//! The prepare-once / execute-many pipeline.
//!
//! The paper separates a query's *static* life — type-checking (is the body a
//! t-wff?), `CALC_{k,i}` classification (Section 3), normal forms (Section 4),
//! and the algebra → calculus compilation of Theorem 3.8 — from its *dynamic*
//! life: evaluation under the limited interpretation or the invented-value
//! semantics of Section 6.  This module gives that split an API:
//!
//! * [`EngineBuilder`] configures an [`Engine`] once: budgets, invention
//!   bounds, universe seeding, feature toggles;
//! * [`Engine::prepare`] / [`Engine::prepare_algebra`] do *all* static work
//!   exactly once and cache the derived artifacts in a [`Prepared`] handle;
//! * [`Prepared::execute`] runs the handle on a database under any
//!   [`Semantics`] through `&self` — cheap, repeatable, and shareable — and
//!   returns one unified [`QueryOutcome`] carrying the answer, the semantics
//!   used, the boundedness flag, and an [`ExecStats`] block.
//!
//! Invention semantics need fresh atoms; they are drawn from an interior
//! scratch clone of the engine's universe, so executing never mutates shared
//! state (Proposition 6.1 makes the choice of fresh atoms irrelevant).
//!
//! ```
//! use itq_core::prelude::*;
//! use itq_core::queries;
//!
//! let engine = Engine::builder().max_invented(2).build();
//! let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
//! assert_eq!(prepared.classification().minimal_class, CalcClass::relational());
//!
//! // One handle, many executions — no static work is repeated.
//! let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
//! for semantics in Semantics::ALL {
//!     let outcome = prepared.execute(&db, semantics).unwrap();
//!     assert_eq!(outcome.semantics, semantics);
//! }
//! ```

use crate::engine::{Engine, EngineError, GovernorConfig, Semantics};
use itq_algebra::{to_calculus_query, AlgExpr, EvalConfig as AlgConfig, PhysicalPlan};
use itq_calculus::eval::{EvalConfig, EvalStats, Evaluable};
use itq_calculus::normal::{sf_classification, to_prenex, PrenexForm, SfClassification};
use itq_calculus::{CompiledQuery, ParallelCompiled, Query, QueryClassification};
use itq_invention::{
    finite_invention_governed_traced, finite_invention_governed_with_stats,
    terminal_invention_governed_traced, terminal_invention_governed_with_stats, InventionConfig,
    TerminalOutcome,
};
use itq_object::{CancelFlag, Database, Instance, Interrupt, Schema, TripKind, Universe};
use itq_trace::{Span, TraceSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// The default in-query worker count: `1` (sequential) unless the
/// `ITQ_PARALLELISM` environment variable names a larger count.  Read once
/// per engine construction, so the test pyramid and the benchmark harness can
/// re-run every suite under `parallelism(n)` without touching call sites.
pub(crate) fn default_parallelism() -> usize {
    std::env::var("ITQ_PARALLELISM")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&workers| workers >= 1)
        .unwrap_or(1)
}

/// Configures and builds an [`Engine`]: evaluation budgets, invention bounds,
/// universe seeding, and feature toggles.
///
/// ```
/// use itq_core::prelude::*;
///
/// let engine = Engine::builder()
///     .calc_config(EvalConfig::default())
///     .max_invented(3)
///     .short_circuit(true)
///     .seed_atoms(["Tom", "Mary"])
///     .build();
/// assert_eq!(engine.invention_config().max_invented, 3);
/// assert_eq!(engine.universe().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    calc_config: EvalConfig,
    alg_config: AlgConfig,
    invention_config: InventionConfig,
    use_compiled: bool,
    use_algebra_planner: bool,
    universe: Universe,
    governor: GovernorConfig,
    parallelism: usize,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            calc_config: EvalConfig::default(),
            alg_config: AlgConfig::default(),
            invention_config: InventionConfig::default(),
            use_compiled: true,
            use_algebra_planner: true,
            universe: Universe::default(),
            governor: GovernorConfig::default(),
            parallelism: default_parallelism(),
        }
    }
}

impl EngineBuilder {
    /// A builder with default budgets and an empty universe.
    ///
    /// ```
    /// use itq_core::pipeline::EngineBuilder;
    /// let engine = EngineBuilder::new().build();
    /// assert!(engine.universe().is_empty());
    /// ```
    pub fn new() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Set the calculus-evaluation budgets.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().calc_config(EvalConfig::tiny()).build();
    /// assert_eq!(engine.calc_config().max_steps, EvalConfig::tiny().max_steps);
    /// ```
    pub fn calc_config(mut self, config: EvalConfig) -> EngineBuilder {
        self.calc_config = config;
        self
    }

    /// Set the algebra-evaluation budgets.
    ///
    /// ```
    /// use itq_algebra::EvalConfig as AlgConfig;
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().alg_config(AlgConfig::default()).build();
    /// assert_eq!(engine.alg_config(), &AlgConfig::default());
    /// ```
    pub fn alg_config(mut self, config: AlgConfig) -> EngineBuilder {
        self.alg_config = config;
        self
    }

    /// Set the full invention-semantics configuration.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let config = InventionConfig { max_invented: 1, ..Default::default() };
    /// let engine = Engine::builder().invention_config(config).build();
    /// assert_eq!(engine.invention_config().max_invented, 1);
    /// ```
    pub fn invention_config(mut self, config: InventionConfig) -> EngineBuilder {
        self.invention_config = config;
        self
    }

    /// Bound the number of invented values the Section 6 semantics may try
    /// (shorthand for adjusting [`InventionConfig::max_invented`]).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().max_invented(7).build();
    /// assert_eq!(engine.invention_config().max_invented, 7);
    /// ```
    pub fn max_invented(mut self, levels: usize) -> EngineBuilder {
        self.invention_config.max_invented = levels;
        self
    }

    /// Toggle quantifier short-circuiting for every evaluation path (the
    /// "naive" full-enumeration strategy is the `false` setting — the ablation
    /// benchmarked by the harness).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().short_circuit(false).build();
    /// assert!(!engine.calc_config().short_circuit);
    /// assert!(!engine.invention_config().eval.short_circuit);
    /// ```
    pub fn short_circuit(mut self, enabled: bool) -> EngineBuilder {
        self.calc_config.short_circuit = enabled;
        self.invention_config.eval.short_circuit = enabled;
        self
    }

    /// Select the evaluation backend for prepared handles: `true` (the
    /// default) runs the compiled slot-based evaluator with interned values
    /// and memoized constructive domains; `false` runs the legacy
    /// tree-walking evaluator — kept so the compiled/legacy speedup can be
    /// measured as an ablation rather than taken on faith.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// assert!(Engine::builder().build().use_compiled());
    /// let legacy = Engine::builder().use_compiled(false).build();
    /// assert!(!legacy.use_compiled());
    /// ```
    pub fn use_compiled(mut self, enabled: bool) -> EngineBuilder {
        self.use_compiled = enabled;
        self
    }

    /// Select the execution path for prepared *algebra* handles under the
    /// limited interpretation: `true` (the default) runs the set-at-a-time
    /// physical plan built at prepare time (joins extracted, selections
    /// pushed down, projections fused — see [`mod@itq_algebra::plan`]); `false`
    /// runs the legacy tuple-at-a-time evaluator — kept so the planner's
    /// speedup can be measured as an ablation (E14) and differential-tested
    /// (`tests/backend_differential.rs`).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// assert!(Engine::builder().build().use_algebra_planner());
    /// let tuple_at_a_time = Engine::builder().use_algebra_planner(false).build();
    /// assert!(!tuple_at_a_time.use_algebra_planner());
    /// ```
    pub fn use_algebra_planner(mut self, enabled: bool) -> EngineBuilder {
        self.use_algebra_planner = enabled;
        self
    }

    /// Intern named atoms into the engine's universe up front, so workload
    /// loaders and the REPL can render answers with human-readable names.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().seed_atoms(["Tom", "Mary", "Sue"]).build();
    /// assert_eq!(engine.universe().len(), 3);
    /// ```
    pub fn seed_atoms<'a, I: IntoIterator<Item = &'a str>>(mut self, names: I) -> EngineBuilder {
        self.universe.atoms(names);
        self
    }

    /// Adopt a full resource-governance configuration in one call (the
    /// per-knob builders below cover the common cases).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder()
    ///     .governor(GovernorConfig { memory_ceiling: Some(1 << 20), ..Default::default() })
    ///     .build();
    /// assert_eq!(engine.governor().memory_ceiling, Some(1 << 20));
    /// ```
    pub fn governor(mut self, governor: GovernorConfig) -> EngineBuilder {
        self.governor = governor;
        self
    }

    /// Arm a wall-clock deadline (in milliseconds) for every execution made
    /// through handles prepared by this engine.  Each execution starts its
    /// own clock; `0` trips at the first interrupt poll, which makes the
    /// deadline path deterministically testable.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().deadline_millis(250).build();
    /// assert_eq!(engine.governor().deadline_millis, Some(250));
    /// ```
    pub fn deadline_millis(mut self, millis: u64) -> EngineBuilder {
        self.governor.deadline_millis = Some(millis);
        self
    }

    /// Arm a ceiling (in bytes) over the values interned by one execution's
    /// value store and domain cache.  Only the interning backends (compiled
    /// calculus, planned algebra) can trip it; the tree walker and the
    /// tuple-at-a-time evaluator never intern.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().memory_ceiling(64 * 1024).build();
    /// assert_eq!(engine.governor().memory_ceiling, Some(64 * 1024));
    /// ```
    pub fn memory_ceiling(mut self, bytes: u64) -> EngineBuilder {
        self.governor.memory_ceiling = Some(bytes);
        self
    }

    /// Link a cross-thread cancellation flag: raising it stops any execution
    /// made through this engine's handles at its next interrupt poll.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let flag = CancelFlag::new();
    /// let engine = Engine::builder().cancel_flag(flag.clone()).build();
    /// assert!(engine.governor().cancel.is_some());
    /// ```
    pub fn cancel_flag(mut self, flag: CancelFlag) -> EngineBuilder {
        self.governor.cancel = Some(flag);
        self
    }

    /// Fault injection: trip every execution at its `nth` interrupt poll with
    /// the given behaviour.  Poll counts are deterministic, so the trip point
    /// is exactly reproducible — this is the harness's injection seam.
    pub fn trip_interrupt_after(mut self, nth: u64, kind: TripKind) -> EngineBuilder {
        self.governor.trip_after = Some((nth, kind));
        self
    }

    /// When enabled, a resource trip during a finite-invention level sweep
    /// degrades to the union of the completed levels (a sound
    /// under-approximation, flagged `bounded_approximation`) instead of
    /// failing.  Off by default, preserving the strict "error or exact
    /// answer" invariant.
    pub fn degrade_on_resource(mut self, enabled: bool) -> EngineBuilder {
        self.governor.degrade_on_resource = enabled;
        self
    }

    /// Set the in-query worker count: the compiled evaluator partitions its
    /// candidate loop and the planner its hash-join probes across this many
    /// scoped threads.  `1` (the default) is the sequential ablation —
    /// answers, governor error messages, and the deterministic counters of
    /// the partitioned paths are byte-identical at every setting, so this
    /// knob trades wall-clock only.  The default honours the
    /// `ITQ_PARALLELISM` environment variable, letting whole test/benchmark
    /// sweeps re-run parallel without code changes.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().parallelism(4).build();
    /// assert_eq!(engine.parallelism(), 4);
    /// assert_eq!(Engine::builder().parallelism(0).build().parallelism(), 1);
    /// ```
    pub fn parallelism(mut self, workers: usize) -> EngineBuilder {
        self.parallelism = workers.max(1);
        self
    }

    /// Adopt an already-populated universe (e.g. one a workload generator
    /// interned its atoms into).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let mut universe = Universe::new();
    /// universe.atom("Tom");
    /// let engine = Engine::builder().universe(universe).build();
    /// assert!(engine.universe().lookup("Tom").is_some());
    /// ```
    pub fn universe(mut self, universe: Universe) -> EngineBuilder {
        self.universe = universe;
        self
    }

    /// Finish: produce the configured [`Engine`].
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// let engine = Engine::builder().build();
    /// assert_eq!(engine.calc_config(), &EvalConfig::default());
    /// ```
    pub fn build(self) -> Engine {
        Engine {
            calc_config: self.calc_config,
            alg_config: self.alg_config,
            invention_config: self.invention_config,
            use_compiled: self.use_compiled,
            use_algebra_planner: self.use_algebra_planner,
            universe: self.universe,
            governor: self.governor,
            parallelism: self.parallelism,
        }
    }
}

/// Wall-clock timings of the *static* (prepare-time) phases, recorded once
/// per [`Engine::prepare`] / [`Engine::prepare_algebra`] call and cached on
/// the [`Prepared`] handle — the observability counterpart to [`ExecStats`]
/// for the other half of the prepare-once / execute-many split.
///
/// ```
/// use itq_core::prelude::*;
/// use itq_core::queries;
///
/// let prepared = Engine::new().prepare(&queries::grandparent_query()).unwrap();
/// let stats = prepared.prepare_stats();
/// // Calculus handles are never planned; every other phase ran exactly once.
/// assert_eq!(stats.plan_micros, 0);
/// let span = stats.to_span();
/// assert_eq!(span.name, "prepare");
/// assert_eq!(span.children.len(), 6);
/// assert_eq!(span.wall_micros, stats.total_micros());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepareStats {
    /// Semantic re-validation of the query body (for algebra handles: type
    /// inference plus the Theorem 3.8 translation into the calculus).
    pub typecheck_micros: u64,
    /// Algebra handles only: building the set-at-a-time physical plan
    /// (join extraction, selection pushdown, projection fusion).  Always 0
    /// for calculus handles.
    pub plan_micros: u64,
    /// The `CALC_{k,i}` classification (Section 3).
    pub classify_micros: u64,
    /// Normal forms: the existential-fragment analysis and the prenex form
    /// (Section 4).
    pub normalize_micros: u64,
    /// Lowering into the slot-based compiled evaluator.
    pub compile_micros: u64,
    /// The static-analysis pass pipeline ([`itq_analyze`]) over the query or
    /// algebra expression, whose report is cached on the handle (see
    /// [`Prepared::diagnostics`]).
    pub analyze_micros: u64,
}

impl PrepareStats {
    /// Total prepare-time wall clock: the sum of every phase.
    pub fn total_micros(&self) -> u64 {
        self.typecheck_micros
            + self.plan_micros
            + self.classify_micros
            + self.normalize_micros
            + self.compile_micros
            + self.analyze_micros
    }

    /// Render as a trace [`Span`]: a `prepare` root with one child per phase,
    /// in execution order.
    pub fn to_span(&self) -> Span {
        let mut root = Span::new("prepare");
        root.wall_micros = self.total_micros();
        for (name, micros) in [
            ("typecheck", self.typecheck_micros),
            ("plan", self.plan_micros),
            ("classify", self.classify_micros),
            ("normalize", self.normalize_micros),
            ("compile", self.compile_micros),
            ("analyze", self.analyze_micros),
        ] {
            let mut child = Span::new(name);
            child.wall_micros = micros;
            root.push_child(child);
        }
        root
    }
}

/// Counters and timings accumulated while executing a prepared query — the
/// dynamic half of the pipeline, designed to be serialized (see
/// [`ExecStats::to_json`]) so benchmark trajectories can be recorded across
/// revisions.
///
/// ```
/// use itq_core::prelude::*;
/// use itq_core::queries;
///
/// let engine = Engine::new();
/// let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
/// let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
/// let outcome = prepared.execute(&db, Semantics::Limited).unwrap();
/// assert!(outcome.stats.steps > 0);
/// assert!(outcome.stats.candidates_checked >= 9); // 3 atoms → 9 candidate pairs
/// assert_eq!(outcome.stats.invention_levels, 0); // no invention under `limited`
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of formula nodes evaluated.
    pub steps: u64,
    /// Number of values drawn from quantifier domains (quantifier expansions).
    pub quantifier_values: u64,
    /// Number of candidate output objects tested (tuples scanned at the top
    /// level of the evaluation).
    pub candidates_checked: u64,
    /// The largest single quantifier domain encountered.
    pub max_domain_seen: u64,
    /// Number of invention levels `Q|_n[d]` explored (0 under the limited
    /// interpretation, which never invents).
    pub invention_levels: u64,
    /// Compiled backend only: constructive-domain lookups answered from the
    /// per-execution memo (0 for the legacy tree walker, which re-enumerates
    /// every domain lazily).
    pub domain_cache_hits: u64,
    /// Compiled backend only: constructive-domain lookups that had to
    /// materialise a new domain (0 for the legacy tree walker).
    pub domain_cache_misses: u64,
    /// Compiled and planned-algebra backends: distinct values interned in the
    /// execution's value store (0 for the tree walker and the tuple-at-a-time
    /// algebra evaluator, which never intern).
    pub interned_values: u64,
    /// Planned-algebra backend only: hash/member index probes plus candidate
    /// pairs examined by join operators (0 for every other backend).
    /// Comparable with the |A|·|B| pairs a tuple-at-a-time product walks.
    pub join_probes: u64,
    /// Planned-algebra backend only: objects constructed by plan operators
    /// before deduplication (0 for every other backend).
    pub tuples_materialised: u64,
    /// Number of parallel partitions the execution split its top-level work
    /// into: candidate-rank ranges on the compiled-calculus path, hash-join
    /// probe chunks (summed over parallelised joins) on the planned-algebra
    /// path.  `0` when the execution ran sequentially
    /// ([`EngineBuilder::parallelism`] at its default of 1, or work too small
    /// to split).  Deterministic for a fixed engine configuration.
    pub partitions: u64,
    /// Number of times the execution polled its armed resource governor
    /// (deadline / cancellation / memory-ceiling checks).  0 whenever the
    /// governor is disarmed — the off path never counts polls.  Like
    /// `wall_micros` this depends on the governor configuration rather than
    /// on (query, database, semantics, backend) alone, so
    /// [`ExecStats::deterministic`] zeroes it.
    pub interrupt_polls: u64,
    /// Wall-clock time of the execute call, in microseconds.
    pub wall_micros: u64,
}

impl ExecStats {
    /// Fold calculus-evaluator counters plus an invention-level count into an
    /// `ExecStats` block (wall time is stamped by the caller).
    fn from_eval(stats: EvalStats, invention_levels: u64) -> ExecStats {
        ExecStats {
            steps: stats.steps,
            quantifier_values: stats.quantifier_values,
            candidates_checked: stats.candidates_checked,
            max_domain_seen: stats.max_domain_seen,
            invention_levels,
            domain_cache_hits: stats.domain_cache_hits,
            domain_cache_misses: stats.domain_cache_misses,
            interned_values: stats.interned_values,
            join_probes: 0,
            tuples_materialised: 0,
            partitions: 0,
            interrupt_polls: 0,
            wall_micros: 0,
        }
    }

    /// Fold planned-algebra executor counters into an `ExecStats` block (wall
    /// time is stamped by the caller; the calculus counters stay zero — no
    /// formula is evaluated on this path).
    fn from_plan(stats: itq_algebra::PlanStats) -> ExecStats {
        ExecStats {
            interned_values: stats.interned_values,
            join_probes: stats.join_probes,
            tuples_materialised: stats.tuples_materialised,
            partitions: stats.partitions,
            ..ExecStats::default()
        }
    }

    /// The statistics with the wall-clock field zeroed.  Every remaining
    /// counter is a deterministic function of (query, database, semantics,
    /// backend), so two executions can be compared with `==` without tripping
    /// over timing noise — `ExecStats` derives `Eq` *including*
    /// `wall_micros`, which is almost never what a differential test wants.
    /// (`interrupt_polls` is zeroed too: it depends on the governor
    /// configuration, not on the query/database/semantics/backend tuple.)
    ///
    /// ```
    /// use itq_core::pipeline::ExecStats;
    /// let a = ExecStats { steps: 7, wall_micros: 12, ..Default::default() };
    /// let b = ExecStats { steps: 7, wall_micros: 99, interrupt_polls: 3, ..Default::default() };
    /// assert_ne!(a, b); // timing noise trips whole-struct equality...
    /// assert_eq!(a.deterministic(), b.deterministic()); // ...but not this.
    /// ```
    pub fn deterministic(&self) -> ExecStats {
        ExecStats {
            interrupt_polls: 0,
            wall_micros: 0,
            ..*self
        }
    }

    /// View the calculus-evaluator share of these statistics as an
    /// [`EvalStats`] (used by the legacy `eval_*` shims).
    pub(crate) fn eval_stats(&self) -> EvalStats {
        EvalStats {
            steps: self.steps,
            quantifier_values: self.quantifier_values,
            candidates_checked: self.candidates_checked,
            max_domain_seen: self.max_domain_seen,
            domain_cache_hits: self.domain_cache_hits,
            domain_cache_misses: self.domain_cache_misses,
            interned_values: self.interned_values,
        }
    }

    /// Fold the statistics of one parallel partition into this aggregate:
    /// additive counters use **saturating** adds (merging many partitions can
    /// never wrap), `max_domain_seen` takes the maximum, and — because
    /// partitions overlap in time — `wall_micros` takes the **maximum** (the
    /// slowest partition bounds the parallel span) rather than the sum, which
    /// would double-count concurrent work.  `partitions` grows by the
    /// partition's own count (at least 1), so folding `n` leaf blocks reports
    /// `n` partitions.
    ///
    /// ```
    /// use itq_core::pipeline::ExecStats;
    /// let mut total = ExecStats { steps: 7, wall_micros: 40, ..Default::default() };
    /// total.merge_partition(&ExecStats { steps: 5, wall_micros: 90, ..Default::default() });
    /// total.merge_partition(&ExecStats { steps: u64::MAX, wall_micros: 10, ..Default::default() });
    /// assert_eq!(total.steps, u64::MAX); // saturates instead of wrapping
    /// assert_eq!(total.wall_micros, 90); // slowest partition, not the sum
    /// assert_eq!(total.partitions, 2);
    /// ```
    pub fn merge_partition(&mut self, part: &ExecStats) {
        self.steps = self.steps.saturating_add(part.steps);
        self.quantifier_values = self
            .quantifier_values
            .saturating_add(part.quantifier_values);
        self.candidates_checked = self
            .candidates_checked
            .saturating_add(part.candidates_checked);
        self.max_domain_seen = self.max_domain_seen.max(part.max_domain_seen);
        self.invention_levels = self.invention_levels.max(part.invention_levels);
        self.domain_cache_hits = self
            .domain_cache_hits
            .saturating_add(part.domain_cache_hits);
        self.domain_cache_misses = self
            .domain_cache_misses
            .saturating_add(part.domain_cache_misses);
        self.interned_values = self.interned_values.saturating_add(part.interned_values);
        self.join_probes = self.join_probes.saturating_add(part.join_probes);
        self.tuples_materialised = self
            .tuples_materialised
            .saturating_add(part.tuples_materialised);
        self.interrupt_polls = self.interrupt_polls.saturating_add(part.interrupt_polls);
        self.partitions = self.partitions.saturating_add(part.partitions.max(1));
        self.wall_micros = self.wall_micros.max(part.wall_micros);
    }

    /// Serialize as a flat JSON object (no external dependencies), in the
    /// field order of the struct.
    ///
    /// ```
    /// use itq_core::pipeline::ExecStats;
    /// let json = ExecStats { steps: 2, ..Default::default() }.to_json();
    /// assert!(json.starts_with("{\"steps\":2,"));
    /// assert!(json.ends_with("}"));
    /// ```
    pub fn to_json(&self) -> String {
        format!(
            "{{\"steps\":{},\"quantifier_values\":{},\"candidates_checked\":{},\
             \"max_domain_seen\":{},\"invention_levels\":{},\"domain_cache_hits\":{},\
             \"domain_cache_misses\":{},\"interned_values\":{},\"join_probes\":{},\
             \"tuples_materialised\":{},\"partitions\":{},\"interrupt_polls\":{},\
             \"wall_micros\":{}}}",
            self.steps,
            self.quantifier_values,
            self.candidates_checked,
            self.max_domain_seen,
            self.invention_levels,
            self.domain_cache_hits,
            self.domain_cache_misses,
            self.interned_values,
            self.join_probes,
            self.tuples_materialised,
            self.partitions,
            self.interrupt_polls,
            self.wall_micros,
        )
    }
}

/// The unified result of executing a prepared query: one shape for all three
/// semantics, replacing the legacy `Evaluation` / `FiniteInventionReport` /
/// `TerminalOutcome` trio.
///
/// ```
/// use itq_core::prelude::*;
/// use itq_core::queries;
///
/// let engine = Engine::new();
/// let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
/// let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
///
/// let limited = prepared.execute(&db, Semantics::Limited).unwrap();
/// assert_eq!(limited.result.len(), 1);
/// assert!(!limited.bounded_approximation);
///
/// // Terminal invention on a guarded query is the paper's `?` (undefined):
/// // empty answer, bounded flag set, and no defining level.
/// let terminal = prepared.execute(&db, Semantics::TerminalInvention).unwrap();
/// assert!(terminal.bounded_approximation && terminal.defined_at.is_none());
/// ```
#[must_use]
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer instance.
    pub result: Instance,
    /// The semantics this outcome was computed under.
    pub semantics: Semantics,
    /// True if the semantics was only decided up to its bound: the finite-
    /// invention union had not stabilised within `max_invented` levels, or
    /// terminal invention came back undefined within the bound.
    pub bounded_approximation: bool,
    /// Terminal invention only: the least `n` at which the unrestricted answer
    /// surfaced an invented value (Theorem 6.19).
    pub defined_at: Option<usize>,
    /// Finite invention only: the smallest `n` after which no new answer
    /// appeared within the bound.
    pub stabilised_at: Option<usize>,
    /// Execution statistics for this call.
    pub stats: ExecStats,
}

/// Which language the handle was prepared from.
#[derive(Debug, Clone)]
enum PreparedSource {
    /// A calculus query, evaluated directly.
    Calculus,
    /// An algebra expression: kept for direct limited evaluation together
    /// with its set-at-a-time physical plan (planned once, at prepare time),
    /// alongside the calculus compilation used by classification and
    /// invention.
    Algebra {
        expr: AlgExpr,
        schema: Schema,
        plan: Box<PhysicalPlan>,
    },
}

/// A query with all its static work done: type-checked, classified,
/// normalized, compiled (for algebra inputs), and bundled with a snapshot of
/// the engine's configuration — ready to execute any number of times.
///
/// Handles are created by [`Engine::prepare`] and [`Engine::prepare_algebra`];
/// [`Prepared::execute`] takes `&self`, so one handle can serve concurrent
/// readers (e.g. a REPL session caching a handle per named query).
///
/// ```
/// use itq_core::prelude::*;
/// use itq_core::queries;
///
/// let engine = Engine::new();
/// let prepared = engine.prepare(&queries::transitive_closure_query()).unwrap();
/// // Static artifacts are cached in the handle:
/// assert_eq!(prepared.classification().minimal_class, CalcClass::second_order());
/// assert!(!prepared.sf_classification().is_in_sf());
/// assert!(prepared.prenex().prefix.len() >= 1);
/// ```
#[must_use]
#[derive(Debug, Clone)]
pub struct Prepared {
    source: PreparedSource,
    query: Query,
    /// Wall-clock timings of the prepare phases that built this handle.
    prepare_stats: PrepareStats,
    /// The slot-based lowering of `query` (the compiled evaluation backend),
    /// produced once at prepare time and reused by every execution — and,
    /// under the invention semantics, by every invention level.
    compiled: CompiledQuery,
    classification: QueryClassification,
    sf: SfClassification,
    prenex: PrenexForm,
    use_compiled: bool,
    use_algebra_planner: bool,
    calc_config: EvalConfig,
    alg_config: AlgConfig,
    invention_config: InventionConfig,
    /// Resource-governance snapshot: each execution arms a fresh
    /// [`Interrupt`] from it (or threads the shared disarmed one).
    governor: GovernorConfig,
    /// In-query worker count snapshot (see [`EngineBuilder::parallelism`]).
    parallelism: usize,
    universe_seed: Universe,
    /// The static-analysis report computed at prepare time (unused variables,
    /// foldable subformulas, budget forecasts, stratum report — see
    /// [`itq_analyze`]).
    diagnostics: itq_analyze::Report,
}

impl Engine {
    /// Prepare a calculus query: re-validate its typing, classify it into its
    /// minimal `CALC_{k,i}` family, compute its normal forms, and snapshot the
    /// engine configuration into a reusable [`Prepared`] handle.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    ///
    /// let engine = Engine::new();
    /// let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    /// let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    /// let outcome = prepared.execute(&db, Semantics::Limited).unwrap();
    /// assert_eq!(outcome.result.len(), 1);
    /// ```
    pub fn prepare(&self, query: &Query) -> Result<Prepared, EngineError> {
        // Prepare-time semantic type-checking: `Query` values are validated at
        // construction, but a handle must stand on its own, so re-derive the
        // full typing here (this is where an invalid body is rejected).
        let typecheck = Instant::now();
        let validated = query.with_body(query.body().clone())?;
        let typecheck_micros = typecheck.elapsed().as_micros() as u64;
        Ok(self.prepared_from(PreparedSource::Calculus, validated, typecheck_micros, 0))
    }

    /// Prepare an algebra expression: infer its output type, compile it into
    /// an equivalent calculus query (Theorem 3.8, done exactly once), and
    /// bundle both forms into a [`Prepared`] handle.  Limited execution runs
    /// the algebra form directly; the invention semantics and the
    /// classification artifacts use the compiled calculus form.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    ///
    /// let engine = Engine::new();
    /// let expr = AlgExpr::pred("PAR")
    ///     .product(AlgExpr::pred("PAR"))
    ///     .select(SelFormula::coords_eq(2, 3))
    ///     .project(vec![1, 4]);
    /// let prepared = engine.prepare_algebra(&expr, &queries::parent_schema()).unwrap();
    /// let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    /// assert_eq!(prepared.execute(&db, Semantics::Limited).unwrap().result.len(), 1);
    /// ```
    pub fn prepare_algebra(
        &self,
        expr: &AlgExpr,
        schema: &Schema,
    ) -> Result<Prepared, EngineError> {
        // Planning type-checks the expression and lowers it into the
        // set-at-a-time physical plan — both exactly once, here.
        let planning = Instant::now();
        let plan = Box::new(itq_algebra::plan(expr, schema)?);
        let plan_micros = planning.elapsed().as_micros() as u64;
        let typecheck = Instant::now();
        let query = to_calculus_query(expr, schema)?;
        let typecheck_micros = typecheck.elapsed().as_micros() as u64;
        Ok(self.prepared_from(
            PreparedSource::Algebra {
                expr: expr.clone(),
                schema: schema.clone(),
                plan,
            },
            query,
            typecheck_micros,
            plan_micros,
        ))
    }

    /// Cache the static artifacts and configuration snapshot into a handle.
    fn prepared_from(
        &self,
        source: PreparedSource,
        query: Query,
        typecheck_micros: u64,
        plan_micros: u64,
    ) -> Prepared {
        let phase = Instant::now();
        let classification = query.classification();
        let classify_micros = phase.elapsed().as_micros() as u64;
        let phase = Instant::now();
        let sf = sf_classification(&query);
        let prenex = to_prenex(query.body());
        let normalize_micros = phase.elapsed().as_micros() as u64;
        let phase = Instant::now();
        let compiled = itq_calculus::compile::compile(&query)
            .expect("a validated query always lowers to its compiled form");
        let compile_micros = phase.elapsed().as_micros() as u64;
        let phase = Instant::now();
        let budgets = itq_analyze::Budgets {
            max_quantifier_domain: self.calc_config.max_quantifier_domain,
            max_instance: self.alg_config.max_instance,
        };
        let diagnostics = match &source {
            PreparedSource::Calculus => itq_analyze::analyze_query(&query, &budgets),
            PreparedSource::Algebra { expr, schema, .. } => {
                itq_analyze::analyze_algebra(expr, schema, &budgets)
            }
        };
        let analyze_micros = phase.elapsed().as_micros() as u64;
        let prepare_stats = PrepareStats {
            typecheck_micros,
            plan_micros,
            classify_micros,
            normalize_micros,
            compile_micros,
            analyze_micros,
        };
        Prepared {
            prepare_stats,
            source,
            query,
            compiled,
            classification,
            sf,
            prenex,
            use_compiled: self.use_compiled,
            use_algebra_planner: self.use_algebra_planner,
            calc_config: self.calc_config,
            alg_config: self.alg_config,
            invention_config: self.invention_config,
            governor: self.governor.clone(),
            parallelism: self.parallelism,
            universe_seed: self.universe.clone(),
            diagnostics,
        }
    }
}

impl Prepared {
    /// The calculus query this handle executes (for algebra inputs, the
    /// Theorem 3.8 compilation).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let q = queries::grandparent_query();
    /// let prepared = Engine::new().prepare(&q).unwrap();
    /// assert_eq!(prepared.query(), &q);
    /// ```
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Wall-clock timings of the static phases that built this handle
    /// (type-checking, planning, classification, normal forms, compilation).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let engine = Engine::new();
    /// let expr = AlgExpr::pred("PAR").powerset();
    /// let algebra = engine.prepare_algebra(&expr, &queries::parent_schema()).unwrap();
    /// let calculus = engine.prepare(&queries::grandparent_query()).unwrap();
    /// // Only algebra handles go through the planner.
    /// assert_eq!(calculus.prepare_stats().plan_micros, 0);
    /// assert_eq!(algebra.prepare_stats().to_span().children.len(), 6);
    /// ```
    pub fn prepare_stats(&self) -> &PrepareStats {
        &self.prepare_stats
    }

    /// The static-analysis report computed once at prepare time: unused or
    /// shadowed quantified variables, always-true/always-false subformulas,
    /// budget forecasts, and the `CALC_{k,i}` stratum report.  Analysis is
    /// purely observational — it never changes what [`Prepared::execute`]
    /// computes.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let prepared = Engine::new().prepare(&queries::grandparent_query()).unwrap();
    /// // A clean query still carries its Info-level stratum report.
    /// let report = prepared.diagnostics();
    /// assert_eq!(report.max_severity(), Some(itq_analyze::Severity::Info));
    /// ```
    pub fn diagnostics(&self) -> &itq_analyze::Report {
        &self.diagnostics
    }

    /// True when the execution budgets snapshotted into this handle are all
    /// at their defaults.  The incremental engine only trusts a delta
    /// strategy under default budgets: a handle with tightened budgets must
    /// keep *failing* exactly as a from-scratch execution would, so its
    /// watched views always re-execute.
    pub(crate) fn budgets_are_default(&self) -> bool {
        self.calc_config == EvalConfig::default() && self.alg_config == AlgConfig::default()
    }

    /// The resource-governance snapshot this handle executes under (taken
    /// from the engine at prepare time, exactly like the budgets).
    pub fn governor(&self) -> &GovernorConfig {
        &self.governor
    }

    /// A copy of this handle executing under a different resource-governance
    /// configuration — all static artifacts (type-checking, classification,
    /// the compiled form, the physical plan) are shared work that is *not*
    /// redone.  This is how a multi-session server re-budgets one cached plan
    /// per request: the plan is prepared once, and each session's deadline /
    /// memory ceiling / cancellation flag is applied to its own copy, so one
    /// session tripping its budget can never affect another session running
    /// the same plan.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let shared = Engine::new().prepare(&queries::grandparent_query()).unwrap();
    /// let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    /// let strict = shared.with_governor(GovernorConfig {
    ///     deadline_millis: Some(0),
    ///     ..Default::default()
    /// });
    /// assert!(strict.execute(&db, Semantics::Limited).is_err());
    /// // The original handle is untouched by the sibling's trip.
    /// assert_eq!(shared.execute(&db, Semantics::Limited).unwrap().result.len(), 1);
    /// ```
    pub fn with_governor(&self, governor: GovernorConfig) -> Prepared {
        Prepared {
            governor,
            ..self.clone()
        }
    }

    /// A copy of this handle executing with a different in-query worker
    /// count, sharing every static artifact — how an ablation sweep (or the
    /// `parallel_scaling` benchmark) varies the thread count without paying
    /// prepare time per point.
    pub fn with_parallelism(&self, workers: usize) -> Prepared {
        Prepared {
            parallelism: workers.max(1),
            ..self.clone()
        }
    }

    /// The in-query worker count snapshotted into this handle.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The worker count an execution actually partitions across.  Fault
    /// injection (`trip_after`) counts governor polls on one shared counter;
    /// under partitioning the poll interleaving is scheduler-dependent, so a
    /// deterministic trip point requires the sequential path — injection
    /// forces 1 worker.
    fn effective_workers(&self) -> usize {
        if self.governor.trip_after.is_some() {
            1
        } else {
            self.parallelism.max(1)
        }
    }

    /// The cached `CALC_{k,i}` classification, identical to
    /// [`Query::classification`] on [`Prepared::query`].
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let q = queries::even_cardinality_query();
    /// let prepared = Engine::new().prepare(&q).unwrap();
    /// assert_eq!(prepared.classification(), &q.classification());
    /// ```
    pub fn classification(&self) -> &QueryClassification {
        &self.classification
    }

    /// The cached existential-fragment analysis (`CALC_{0,1,∃}`, Theorem 4.3).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let prepared = Engine::new().prepare(&queries::grandparent_query()).unwrap();
    /// assert!(prepared.sf_classification().is_in_sf());
    /// ```
    pub fn sf_classification(&self) -> &SfClassification {
        &self.sf
    }

    /// The cached prenex normal form of the query body.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let prepared = Engine::new().prepare(&queries::grandparent_query()).unwrap();
    /// assert_eq!(prepared.prenex().prefix.len(), 2); // ∃x ∃y
    /// ```
    pub fn prenex(&self) -> &PrenexForm {
        &self.prenex
    }

    /// True if this handle was prepared from an algebra expression.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let engine = Engine::new();
    /// assert!(!engine.prepare(&queries::grandparent_query()).unwrap().is_algebra());
    /// let pw = AlgExpr::pred("PAR").powerset();
    /// assert!(engine.prepare_algebra(&pw, &queries::parent_schema()).unwrap().is_algebra());
    /// ```
    pub fn is_algebra(&self) -> bool {
        matches!(self.source, PreparedSource::Algebra { .. })
    }

    /// The original algebra expression, if this handle was prepared from one.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let expr = AlgExpr::pred("PAR").powerset();
    /// let prepared = Engine::new()
    ///     .prepare_algebra(&expr, &queries::parent_schema())
    ///     .unwrap();
    /// assert_eq!(prepared.algebra_expr(), Some(&expr));
    /// ```
    pub fn algebra_expr(&self) -> Option<&AlgExpr> {
        match &self.source {
            PreparedSource::Calculus => None,
            PreparedSource::Algebra { expr, .. } => Some(expr),
        }
    }

    /// The set-at-a-time physical plan, if this handle was prepared from an
    /// algebra expression (planned once at prepare time; the surface
    /// language's `plan <name>;` statement pretty-prints it).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let expr = AlgExpr::pred("PAR")
    ///     .product(AlgExpr::pred("PAR"))
    ///     .select(SelFormula::coords_eq(2, 3))
    ///     .project(vec![1, 4]);
    /// let prepared = Engine::new()
    ///     .prepare_algebra(&expr, &queries::parent_schema())
    ///     .unwrap();
    /// let plan = prepared.physical_plan().unwrap();
    /// assert!(plan.render().contains("hash-join"));
    /// assert!(Engine::new()
    ///     .prepare(&queries::grandparent_query())
    ///     .unwrap()
    ///     .physical_plan()
    ///     .is_none());
    /// ```
    pub fn physical_plan(&self) -> Option<&PhysicalPlan> {
        match &self.source {
            PreparedSource::Calculus => None,
            PreparedSource::Algebra { plan, .. } => Some(plan),
        }
    }

    /// The slot-based compiled form of the query, lowered once at prepare
    /// time.  This is what [`Prepared::execute`] runs by default; the legacy
    /// tree walker remains reachable via
    /// [`EngineBuilder::use_compiled`]`(false)`.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    /// let prepared = Engine::new().prepare(&queries::grandparent_query()).unwrap();
    /// assert_eq!(prepared.compiled().slot_count(), 3); // t, x, y
    /// ```
    pub fn compiled(&self) -> &itq_calculus::CompiledQuery {
        &self.compiled
    }

    /// The evaluation backend this handle executes through: the compiled
    /// slot-based form by default, the legacy tree walker when the engine was
    /// built with `use_compiled(false)`.
    fn backend(&self) -> &dyn Evaluable {
        if self.use_compiled {
            &self.compiled
        } else {
            &self.query
        }
    }

    /// The compiled backend bound to this handle's worker count, when an
    /// execution should partition (compiled evaluator selected and more than
    /// one effective worker); `None` means "use [`Prepared::backend`]".
    fn parallel_compiled(&self) -> Option<ParallelCompiled<'_>> {
        let workers = self.effective_workers();
        (self.use_compiled && workers > 1).then(|| ParallelCompiled::new(&self.compiled, workers))
    }

    /// Execute the prepared query on `db` under the chosen semantics.
    ///
    /// Takes `&self`: the limited interpretation is read-only by nature, and
    /// the invention semantics confine their fresh-atom bookkeeping to an
    /// interior scratch clone of the universe snapshot, so no exclusive access
    /// is ever needed — prepare once, execute many, share freely.
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    ///
    /// let engine = Engine::new();
    /// let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    /// // Execute-many over *different* databases with one handle.
    /// for edges in [vec![(Atom(0), Atom(1))], vec![(Atom(0), Atom(1)), (Atom(1), Atom(2))]] {
    ///     let db = queries::parent_database(&edges);
    ///     let outcome = prepared.execute(&db, Semantics::Limited).unwrap();
    ///     assert_eq!(outcome.result.len(), edges.len() - 1);
    /// }
    /// ```
    pub fn execute(
        &self,
        db: &Database,
        semantics: Semantics,
    ) -> Result<QueryOutcome, EngineError> {
        self.run(db, semantics, false).0.map(|(outcome, _)| outcome)
    }

    /// [`Prepared::execute`], but the execution statistics are returned even
    /// when the execution fails: on an error the [`ExecStats`] block carries
    /// the wall clock and governor poll count of the failed attempt (its
    /// work counters stay zero — a stopped execution has no meaningful
    /// answer-shaped counters to report).
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    ///
    /// let engine = Engine::builder().deadline_millis(0).build();
    /// let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    /// let db = queries::parent_database(&[(Atom(0), Atom(1))]);
    /// let (result, stats) = prepared.try_execute(&db, Semantics::Limited);
    /// assert!(result.is_err());
    /// assert!(stats.interrupt_polls >= 1, "the entry poll always runs");
    /// ```
    pub fn try_execute(
        &self,
        db: &Database,
        semantics: Semantics,
    ) -> (Result<QueryOutcome, EngineError>, ExecStats) {
        let (result, stats) = self.run(db, semantics, false);
        (result.map(|(outcome, _)| outcome), stats)
    }

    /// [`Prepared::execute`] plus a trace: the identical [`QueryOutcome`]
    /// together with a [`Span`] tree describing where the execution spent its
    /// work — one operator span per physical-plan node on the planned-algebra
    /// path, per-quantifier-slot draw counts on the compiled-calculus path,
    /// and one `Q|_n[d]` span per level under the invention semantics.  The
    /// root span's `wall_micros` equals the outcome's
    /// [`ExecStats::wall_micros`].
    ///
    /// ```
    /// use itq_core::prelude::*;
    /// use itq_core::queries;
    ///
    /// // parallelism(1) pins the sequential per-slot span tree; partitioned
    /// // runs replace the slot children with one span per partition.
    /// let engine = Engine::builder().parallelism(1).build();
    /// let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    /// let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    /// let (outcome, span) = prepared.execute_traced(&db, Semantics::Limited).unwrap();
    /// assert_eq!(span.name, "compiled-eval");
    /// assert_eq!(span.wall_micros, outcome.stats.wall_micros);
    /// assert_eq!(span.subtree_total("draws"), outcome.stats.quantifier_values);
    /// ```
    pub fn execute_traced(
        &self,
        db: &Database,
        semantics: Semantics,
    ) -> Result<(QueryOutcome, Span), EngineError> {
        self.run(db, semantics, true).0.map(|(outcome, span)| {
            let span = span.expect("traced runs always produce a span");
            (outcome, span)
        })
    }

    /// Execute, recording the trace into `sink` when it is enabled.  With a
    /// disabled sink (e.g. [`itq_trace::NoopSink`]) this short-circuits to
    /// the plain untraced [`Prepared::execute`] path — tracing costs nothing
    /// when it is off.
    pub fn execute_with_sink(
        &self,
        db: &Database,
        semantics: Semantics,
        sink: &dyn TraceSink,
    ) -> Result<QueryOutcome, EngineError> {
        if !sink.is_enabled() {
            return self.execute(db, semantics);
        }
        let (outcome, span) = self.execute_traced(db, semantics)?;
        sink.record(span);
        Ok(outcome)
    }

    /// The shared execute body: `traced` selects between the plain backends
    /// and their span-producing variants.  Answers, flags, and every counter
    /// are byte-identical between the two modes; only the trace differs.
    ///
    /// This is also the containment seam: the backend dispatch runs inside
    /// `catch_unwind`, so an engine defect (or an injected
    /// [`TripKind::Panic`]) surfaces as [`EngineError::Internal`] instead of
    /// unwinding through the caller — the handle, the engine, and any
    /// incremental state stay usable afterwards.  The returned [`ExecStats`]
    /// is filled on *every* path: on success it equals the outcome's stats,
    /// on failure it carries the wall clock and governor poll count of the
    /// failed attempt.
    fn run(
        &self,
        db: &Database,
        semantics: Semantics,
        traced: bool,
    ) -> (Result<(QueryOutcome, Option<Span>), EngineError>, ExecStats) {
        let start = Instant::now();
        let armed;
        let interrupt: &Interrupt = if self.governor.is_disarmed() {
            Interrupt::disarmed()
        } else {
            armed = self.governor.interrupt();
            &armed
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.dispatch(db, semantics, traced, interrupt)
        }));
        let wall_micros = start.elapsed().as_micros() as u64;
        let interrupt_polls = interrupt.polls();
        match result {
            Ok(Ok((mut outcome, mut span))) => {
                outcome.stats.interrupt_polls = interrupt_polls;
                outcome.stats.wall_micros = wall_micros;
                if let Some(span) = span.as_mut() {
                    span.wall_micros = wall_micros;
                }
                let stats = outcome.stats;
                (Ok((outcome, span)), stats)
            }
            Ok(Err(e)) => {
                let stats = ExecStats {
                    interrupt_polls,
                    wall_micros,
                    ..ExecStats::default()
                };
                (Err(e), stats)
            }
            Err(payload) => {
                let stats = ExecStats {
                    interrupt_polls,
                    wall_micros,
                    ..ExecStats::default()
                };
                let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                (Err(EngineError::Internal { detail }), stats)
            }
        }
    }

    /// The backend dispatch proper, running under `run`'s containment seam
    /// with the execution's interrupt threaded into every backend.
    fn dispatch(
        &self,
        db: &Database,
        semantics: Semantics,
        traced: bool,
        interrupt: &Interrupt,
    ) -> Result<(QueryOutcome, Option<Span>), EngineError> {
        let (outcome, span) = match semantics {
            Semantics::Limited => match &self.source {
                PreparedSource::Algebra { expr, schema, plan } => {
                    if self.use_algebra_planner {
                        let workers = self.effective_workers();
                        let (result, plan_stats, op_span) = if traced {
                            let (result, plan_stats, op) = plan.execute_traced_governed_parallel(
                                db,
                                &self.alg_config,
                                interrupt,
                                workers,
                            )?;
                            (result, plan_stats, Some(op))
                        } else {
                            let (result, plan_stats) = plan.execute_governed_parallel(
                                db,
                                &self.alg_config,
                                interrupt,
                                workers,
                            )?;
                            (result, plan_stats, None)
                        };
                        let span = op_span.map(|op| {
                            let mut root = Span::new("planned-algebra");
                            root.push_field("rows_out", result.len() as u64);
                            root.push_child(op);
                            root
                        });
                        (
                            QueryOutcome {
                                result,
                                semantics,
                                bounded_approximation: false,
                                defined_at: None,
                                stabilised_at: None,
                                stats: ExecStats::from_plan(plan_stats),
                            },
                            span,
                        )
                    } else {
                        let result = expr.eval_governed(db, schema, &self.alg_config, interrupt)?;
                        let span = traced.then(|| {
                            let mut root = Span::new("tuple-algebra");
                            root.push_field("rows_out", result.len() as u64);
                            root
                        });
                        (
                            QueryOutcome {
                                result,
                                semantics,
                                bounded_approximation: false,
                                defined_at: None,
                                stabilised_at: None,
                                stats: ExecStats::default(),
                            },
                            span,
                        )
                    }
                }
                PreparedSource::Calculus => {
                    let workers = self.effective_workers();
                    let (evaluation, partitions, span) = if self.use_compiled && workers > 1 {
                        // Partitioned compiled evaluation: the candidate loop
                        // splits across `workers` scoped threads over a shared
                        // frozen interner prefix (byte-identical answers and
                        // error messages — see
                        // `CompiledQuery::eval_governed_parallel`).
                        if traced {
                            let (evaluation, span) = self.compiled.eval_traced_governed_parallel(
                                db,
                                &[],
                                &self.calc_config,
                                interrupt,
                                workers,
                            )?;
                            let partitions = span.field("partitions").unwrap_or(0);
                            (evaluation, partitions, Some(span))
                        } else {
                            let parallel = self.compiled.eval_governed_parallel(
                                db,
                                &[],
                                &self.calc_config,
                                interrupt,
                                workers,
                            )?;
                            let partitions = parallel.partitions.len() as u64;
                            (parallel.evaluation, partitions, None)
                        }
                    } else if traced && self.use_compiled {
                        let (evaluation, span) = self.compiled.eval_traced_governed(
                            db,
                            &[],
                            &self.calc_config,
                            interrupt,
                        )?;
                        (evaluation, 0, Some(span))
                    } else {
                        let evaluation =
                            self.backend()
                                .eval_governed(db, &[], &self.calc_config, interrupt)?;
                        let span = traced.then(|| {
                            // The tree walker has no per-slot hooks; trace the
                            // whole evaluation as one span.
                            let mut root = Span::new("tree-walk");
                            root.push_field("rows_out", evaluation.result.len() as u64);
                            root.push_field("steps", evaluation.stats.steps);
                            root.push_field(
                                "quantifier_values",
                                evaluation.stats.quantifier_values,
                            );
                            root.push_field(
                                "candidates_checked",
                                evaluation.stats.candidates_checked,
                            );
                            root
                        });
                        (evaluation, 0, span)
                    };
                    let mut stats = ExecStats::from_eval(evaluation.stats, 0);
                    stats.partitions = partitions;
                    (
                        QueryOutcome {
                            result: evaluation.result,
                            semantics,
                            bounded_approximation: false,
                            defined_at: None,
                            stabilised_at: None,
                            stats,
                        },
                        span,
                    )
                }
            },
            Semantics::FiniteInvention => {
                let mut scratch = self.universe_seed.clone();
                // The per-level loop runs the compiled form directly: lowering
                // happened once at prepare time, so each invention level only
                // pays for execution (with its own atom-set-specific domain
                // cache, since a changed atom set changes every cons_X).
                // Under `parallelism(n)` each level's candidate loop is
                // partitioned by wrapping the compiled form — the invention
                // driver stays oblivious.
                let parallel_backend;
                let backend: &dyn Evaluable = match self.parallel_compiled() {
                    Some(wrapped) => {
                        parallel_backend = wrapped;
                        &parallel_backend
                    }
                    None => self.backend(),
                };
                let degrade = self.governor.degrade_on_resource;
                let (report, stats, levels) = if traced {
                    let (report, stats, levels) = finite_invention_governed_traced(
                        backend,
                        db,
                        &mut scratch,
                        &self.invention_config,
                        interrupt,
                        degrade,
                    )?;
                    (report, stats, Some(levels))
                } else {
                    let (report, stats) = finite_invention_governed_with_stats(
                        backend,
                        db,
                        &mut scratch,
                        &self.invention_config,
                        interrupt,
                        degrade,
                    )?;
                    (report, stats, None)
                };
                let span = levels.map(|levels| {
                    let mut root = Span::new("finite-invention");
                    root.push_field("invention_levels", report.levels() as u64);
                    root.push_field("rows_out", report.union.len() as u64);
                    for level in levels {
                        root.push_child(level);
                    }
                    root
                });
                (
                    QueryOutcome {
                        bounded_approximation: report.stabilised_at.is_none(),
                        stabilised_at: report.stabilised_at,
                        defined_at: None,
                        semantics,
                        stats: ExecStats::from_eval(stats, report.levels() as u64),
                        result: report.union,
                    },
                    span,
                )
            }
            Semantics::TerminalInvention => {
                let mut scratch = self.universe_seed.clone();
                let parallel_backend;
                let backend: &dyn Evaluable = match self.parallel_compiled() {
                    Some(wrapped) => {
                        parallel_backend = wrapped;
                        &parallel_backend
                    }
                    None => self.backend(),
                };
                let (terminal, stats, levels) = if traced {
                    let (terminal, stats, levels) = terminal_invention_governed_traced(
                        backend,
                        db,
                        &mut scratch,
                        &self.invention_config,
                        interrupt,
                    )?;
                    (terminal, stats, Some(levels))
                } else {
                    let (terminal, stats) = terminal_invention_governed_with_stats(
                        backend,
                        db,
                        &mut scratch,
                        &self.invention_config,
                        interrupt,
                    )?;
                    (terminal, stats, None)
                };
                let outcome = match terminal {
                    TerminalOutcome::Defined { n, answer } => QueryOutcome {
                        result: answer,
                        semantics,
                        bounded_approximation: false,
                        defined_at: Some(n),
                        stabilised_at: None,
                        stats: ExecStats::from_eval(stats, (n + 1) as u64),
                    },
                    TerminalOutcome::UndefinedWithinBound { tried } => QueryOutcome {
                        result: Instance::empty(),
                        semantics,
                        bounded_approximation: true,
                        defined_at: None,
                        stabilised_at: None,
                        stats: ExecStats::from_eval(stats, tried as u64),
                    },
                };
                let span = levels.map(|levels| {
                    let mut root = Span::new("terminal-invention");
                    root.push_field("invention_levels", outcome.stats.invention_levels);
                    root.push_field("rows_out", outcome.result.len() as u64);
                    for level in levels {
                        root.push_child(level);
                    }
                    root
                });
                (outcome, span)
            }
        };
        Ok((outcome, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{
        grandparent_query, parent_database, parent_schema, transitive_closure_query,
    };
    use itq_algebra::SelFormula;
    use itq_calculus::{Formula, Term};
    use itq_object::{Atom, Type};

    fn db() -> Database {
        parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))])
    }

    /// A query whose answer differs between the limited interpretation and
    /// finite invention (it needs an external witness).
    fn witness_query() -> Query {
        Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::and(vec![
                Formula::pred("PAR", Term::var("t")),
                Formula::exists(
                    "y",
                    Type::Atomic,
                    Formula::not(Formula::exists(
                        "z",
                        Type::flat_tuple(2),
                        Formula::and(vec![
                            Formula::pred("PAR", Term::var("z")),
                            Formula::or(vec![
                                Formula::eq(Term::proj("z", 1), Term::var("y")),
                                Formula::eq(Term::proj("z", 2), Term::var("y")),
                            ]),
                        ]),
                    )),
                ),
            ]),
            parent_schema(),
        )
        .unwrap()
    }

    #[test]
    fn builder_configures_every_knob() {
        let engine = Engine::builder()
            .calc_config(EvalConfig::tiny())
            .alg_config(AlgConfig::default())
            .invention_config(InventionConfig::default())
            .max_invented(2)
            .short_circuit(false)
            .seed_atoms(["Tom", "Mary"])
            .build();
        assert_eq!(engine.calc_config().max_steps, EvalConfig::tiny().max_steps);
        assert_eq!(engine.invention_config().max_invented, 2);
        assert!(!engine.calc_config().short_circuit);
        assert!(!engine.invention_config().eval.short_circuit);
        assert_eq!(engine.universe().len(), 2);

        let mut seeded = Universe::new();
        seeded.atom("Zed");
        let adopted = Engine::builder().universe(seeded).build();
        assert!(adopted.universe().lookup("Zed").is_some());
    }

    #[test]
    fn prepare_caches_the_static_artifacts() {
        let engine = Engine::new();
        let q = transitive_closure_query();
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(prepared.query(), &q);
        assert_eq!(prepared.classification(), &q.classification());
        assert_eq!(
            prepared.sf_classification().higher_order_vars,
            itq_calculus::normal::sf_classification(&q).higher_order_vars
        );
        assert_eq!(
            prepared.prenex().matrix,
            itq_calculus::normal::to_prenex(q.body()).matrix
        );
        assert!(!prepared.is_algebra());
        assert!(prepared.algebra_expr().is_none());
    }

    #[test]
    fn execute_takes_shared_references_only() {
        let engine = Engine::new();
        let prepared = engine.prepare(&witness_query()).unwrap();
        let db = db();
        // Two simultaneous shared borrows execute fine — no `&mut` anywhere.
        let (a, b) = (&prepared, &prepared);
        let limited = a.execute(&db, Semantics::Limited).unwrap();
        let invented = b.execute(&db, Semantics::FiniteInvention).unwrap();
        assert!(limited.result.is_empty());
        assert_eq!(invented.result.len(), 2);
        assert!(invented.stats.invention_levels > 0);
        // The engine's shared universe was never touched by invention.
        assert!(engine.universe().is_empty());
    }

    #[test]
    fn outcome_carries_semantics_flags_and_stats() {
        let engine = Engine::new();
        let db = db();
        let prepared = engine.prepare(&grandparent_query()).unwrap();

        let limited = prepared.execute(&db, Semantics::Limited).unwrap();
        assert_eq!(limited.semantics, Semantics::Limited);
        assert!(!limited.bounded_approximation);
        assert_eq!(limited.stats.invention_levels, 0);
        assert!(limited.stats.steps > 0);
        assert!(limited.stats.candidates_checked >= 9);

        // Grandparent is guarded: terminal invention is undefined within bound.
        let terminal = prepared.execute(&db, Semantics::TerminalInvention).unwrap();
        assert!(terminal.bounded_approximation);
        assert_eq!(terminal.defined_at, None);
        assert!(terminal.result.is_empty());
        assert_eq!(
            terminal.stats.invention_levels,
            engine.invention_config().max_invented as u64 + 1
        );

        // The unguarded query {t/U | ⊤} is defined at n = 1.
        let everything = Query::new("t", Type::Atomic, Formula::truth(), parent_schema()).unwrap();
        let outcome = engine
            .prepare(&everything)
            .unwrap()
            .execute(&db, Semantics::TerminalInvention)
            .unwrap();
        assert_eq!(outcome.defined_at, Some(1));
        assert!(!outcome.bounded_approximation);
        assert_eq!(outcome.stats.invention_levels, 2);

        // Finite invention stabilises on invention-invariant queries.
        let finite = prepared.execute(&db, Semantics::FiniteInvention).unwrap();
        assert!(!finite.bounded_approximation);
        assert!(finite.stabilised_at.is_some());
        assert_eq!(finite.result, limited.result);
    }

    #[test]
    fn algebra_handles_compile_once_and_execute_under_every_semantics() {
        let engine = Engine::new();
        let expr = AlgExpr::pred("PAR")
            .product(AlgExpr::pred("PAR"))
            .select(SelFormula::coords_eq(2, 3))
            .project(vec![1, 4]);
        let prepared = engine.prepare_algebra(&expr, &parent_schema()).unwrap();
        assert!(prepared.is_algebra());
        assert_eq!(prepared.algebra_expr(), Some(&expr));
        let db = db();
        let limited = prepared.execute(&db, Semantics::Limited).unwrap();
        // The direct algebra path and the compiled calculus path agree.
        let compiled = prepared.query().eval(&db, engine.calc_config()).unwrap();
        assert_eq!(limited.result, compiled);
        // Relational algebra gains nothing from invention (Theorem 6.11); use a
        // cheap expression and one invention level to keep the domains small.
        let tight = Engine::builder().max_invented(1).build();
        let identity = tight
            .prepare_algebra(&AlgExpr::pred("PAR"), &parent_schema())
            .unwrap();
        let finite = identity.execute(&db, Semantics::FiniteInvention).unwrap();
        assert_eq!(
            finite.result,
            identity.execute(&db, Semantics::Limited).unwrap().result
        );
    }

    #[test]
    fn prepare_rejects_ill_typed_algebra() {
        let engine = Engine::new();
        // Projection coordinate 5 does not exist in a binary relation.
        let bad = AlgExpr::pred("PAR").project(vec![5]);
        assert!(engine.prepare_algebra(&bad, &parent_schema()).is_err());
        // Unknown predicate fails type inference too.
        let unknown = AlgExpr::pred("NOPE");
        assert!(engine.prepare_algebra(&unknown, &parent_schema()).is_err());
    }

    #[test]
    fn exec_stats_json_shape() {
        let stats = ExecStats {
            steps: 1,
            quantifier_values: 2,
            candidates_checked: 3,
            max_domain_seen: 4,
            invention_levels: 5,
            domain_cache_hits: 6,
            domain_cache_misses: 7,
            interned_values: 8,
            join_probes: 9,
            tuples_materialised: 10,
            partitions: 13,
            interrupt_polls: 11,
            wall_micros: 12,
        };
        assert_eq!(
            stats.to_json(),
            "{\"steps\":1,\"quantifier_values\":2,\"candidates_checked\":3,\
             \"max_domain_seen\":4,\"invention_levels\":5,\"domain_cache_hits\":6,\
             \"domain_cache_misses\":7,\"interned_values\":8,\"join_probes\":9,\
             \"tuples_materialised\":10,\"partitions\":13,\"interrupt_polls\":11,\
             \"wall_micros\":12}"
        );
    }

    #[test]
    fn parallel_engine_matches_sequential_on_every_semantics() {
        let db = parent_database(&[
            (Atom(0), Atom(1)),
            (Atom(1), Atom(2)),
            (Atom(2), Atom(3)),
            (Atom(3), Atom(4)),
        ]);
        let sequential = Engine::builder().parallelism(1).build();
        let parallel = Engine::builder().parallelism(4).build();
        assert_eq!(parallel.parallelism(), 4);
        for query in [grandparent_query(), witness_query()] {
            let seq = sequential.prepare(&query).unwrap();
            let par = parallel.prepare(&query).unwrap();
            assert_eq!(par.parallelism(), 4);
            for semantics in Semantics::ALL {
                let a = seq.execute(&db, semantics).unwrap();
                let b = par.execute(&db, semantics).unwrap();
                assert_eq!(a.result, b.result, "{semantics}");
                assert_eq!(a.bounded_approximation, b.bounded_approximation);
                assert_eq!(a.defined_at, b.defined_at);
                assert_eq!(a.stabilised_at, b.stabilised_at);
                // The shared deterministic counters agree exactly under the
                // limited interpretation (the partitioned candidate loop).
                if semantics == Semantics::Limited {
                    assert_eq!(a.stats.steps, b.stats.steps);
                    assert_eq!(a.stats.quantifier_values, b.stats.quantifier_values);
                    assert_eq!(a.stats.candidates_checked, b.stats.candidates_checked);
                    assert_eq!(a.stats.max_domain_seen, b.stats.max_domain_seen);
                    assert_eq!(a.stats.partitions, 0, "sequential reports no partitions");
                    assert!(b.stats.partitions > 1, "parallel reports its split");
                }
            }
        }
    }

    #[test]
    fn parallel_traced_execution_reports_partition_children() {
        let db = db();
        let engine = Engine::builder().parallelism(4).build();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let (outcome, span) = prepared.execute_traced(&db, Semantics::Limited).unwrap();
        assert_eq!(span.name, "compiled-eval");
        assert_eq!(span.field("partitions"), Some(outcome.stats.partitions));
        let partitions = span
            .children
            .iter()
            .filter(|c| c.name.starts_with("partition "))
            .count() as u64;
        assert_eq!(partitions, outcome.stats.partitions);
        assert_eq!(
            span.subtree_total("candidates_checked") - span.field("candidates_checked").unwrap(),
            outcome.stats.candidates_checked,
            "partition children re-partition the root's counters"
        );
        // The planned-algebra path reports its probe partitions too.
        let pairs: Vec<(Atom, Atom)> = (0..24).map(|i| (Atom(i), Atom(i + 1))).collect();
        let wide = parent_database(&pairs);
        let expr = AlgExpr::pred("PAR")
            .product(AlgExpr::pred("PAR"))
            .select(SelFormula::coords_eq(2, 3))
            .project(vec![1, 4]);
        let algebra = engine.prepare_algebra(&expr, &parent_schema()).unwrap();
        let outcome = algebra.execute(&wide, Semantics::Limited).unwrap();
        assert_eq!(outcome.stats.partitions, 4);
        let sequential = algebra.with_parallelism(1);
        let seq = sequential.execute(&wide, Semantics::Limited).unwrap();
        assert_eq!(seq.result, outcome.result);
        assert_eq!(seq.stats.partitions, 0);
        assert_eq!(seq.stats.join_probes, outcome.stats.join_probes);
        assert_eq!(seq.stats.interned_values, outcome.stats.interned_values);
    }

    #[test]
    fn governor_trips_are_byte_identical_under_parallelism() {
        let db = db();
        for workers in [1usize, 4] {
            let engine = Engine::builder()
                .parallelism(workers)
                .deadline_millis(0)
                .build();
            let err = engine
                .prepare(&grandparent_query())
                .unwrap()
                .execute(&db, Semantics::Limited)
                .unwrap_err();
            assert_eq!(err.to_string(), "execution deadline of 0 ms exceeded");
            let flag = CancelFlag::new();
            flag.cancel();
            let engine = Engine::builder()
                .parallelism(workers)
                .cancel_flag(flag)
                .build();
            let err = engine
                .prepare(&grandparent_query())
                .unwrap()
                .execute(&db, Semantics::Limited)
                .unwrap_err();
            assert_eq!(err.to_string(), "execution cancelled");
        }
    }

    #[test]
    fn fault_injection_forces_the_sequential_path() {
        // `trip_after` counts polls on one shared counter; interleaved worker
        // polls would make the trip point racy, so injection pins workers=1 —
        // the trip stays exactly reproducible even at `parallelism(4)`.
        let engine = Engine::builder()
            .parallelism(4)
            .trip_interrupt_after(1, TripKind::Panic)
            .build();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let err = prepared.execute(&db(), Semantics::Limited).unwrap_err();
        assert_eq!(
            err.to_string(),
            "internal engine error (contained): fault injection: synthetic engine panic"
        );
    }

    #[test]
    fn with_governor_rebudgets_a_shared_plan_per_session() {
        let db = db();
        let shared = Engine::builder()
            .parallelism(2)
            .build()
            .prepare(&grandparent_query())
            .unwrap();
        // Session A executes under a zero deadline and trips...
        let session_a = shared.with_governor(GovernorConfig {
            deadline_millis: Some(0),
            ..Default::default()
        });
        assert!(session_a.execute(&db, Semantics::Limited).is_err());
        // ...while session B (and the shared handle) are unaffected.
        let session_b = shared.with_governor(GovernorConfig::default());
        assert_eq!(
            session_b
                .execute(&db, Semantics::Limited)
                .unwrap()
                .result
                .len(),
            1
        );
        assert_eq!(
            shared
                .execute(&db, Semantics::Limited)
                .unwrap()
                .result
                .len(),
            1
        );
        assert_eq!(session_b.parallelism(), 2, "snapshots carry over");
    }

    #[test]
    fn algebra_planner_is_the_default_and_ablatable() {
        let expr = AlgExpr::pred("PAR")
            .product(AlgExpr::pred("PAR"))
            .select(SelFormula::coords_eq(2, 3))
            .project(vec![1, 4]);
        let db = db();
        let planned_engine = Engine::new();
        assert!(planned_engine.use_algebra_planner());
        let tuple_engine = Engine::builder().use_algebra_planner(false).build();
        assert!(!tuple_engine.use_algebra_planner());

        let planned = planned_engine
            .prepare_algebra(&expr, &parent_schema())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap();
        let tuple = tuple_engine
            .prepare_algebra(&expr, &parent_schema())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap();
        assert_eq!(planned.result, tuple.result);
        // The planner's counters are observable; the tuple path reports none.
        assert!(planned.stats.join_probes > 0);
        assert!(planned.stats.tuples_materialised > 0);
        assert!(planned.stats.interned_values > 0);
        assert_eq!(tuple.stats.join_probes, 0);
        assert_eq!(tuple.stats.tuples_materialised, 0);
        // Neither algebra path touches the calculus counters.
        assert_eq!(planned.stats.steps, 0);
        assert_eq!(tuple.stats.steps, 0);
    }

    #[test]
    fn traced_execution_matches_plain_on_every_path() {
        let db = db();
        // Sequential pin: the compiled span shape below is the per-slot tree,
        // which an `ITQ_PARALLELISM` override would replace with partition
        // spans (that grammar is pinned in tests/trace_equivalence.rs).
        let engine = Engine::builder().parallelism(1).build();

        // Compiled calculus: root span with per-slot children.
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        for semantics in Semantics::ALL {
            let plain = prepared.execute(&db, semantics).unwrap();
            let (traced, span) = prepared.execute_traced(&db, semantics).unwrap();
            assert_eq!(plain.result, traced.result);
            assert_eq!(plain.bounded_approximation, traced.bounded_approximation);
            assert_eq!(plain.defined_at, traced.defined_at);
            assert_eq!(plain.stabilised_at, traced.stabilised_at);
            assert_eq!(plain.stats.deterministic(), traced.stats.deterministic());
            assert_eq!(span.wall_micros, traced.stats.wall_micros);
            assert!(!span.children.is_empty());
        }
        let (limited, span) = prepared.execute_traced(&db, Semantics::Limited).unwrap();
        assert_eq!(span.name, "compiled-eval");
        assert_eq!(span.subtree_total("draws"), limited.stats.quantifier_values);
        let (finite, span) = prepared
            .execute_traced(&db, Semantics::FiniteInvention)
            .unwrap();
        assert_eq!(span.name, "finite-invention");
        assert_eq!(span.children.len(), finite.stats.invention_levels as usize);
        assert_eq!(span.children[0].name, "Q|_0[d]");

        // Planned algebra: the operator tree hangs off the root span, and the
        // span subtree totals reproduce the ExecStats counters.
        let expr = AlgExpr::pred("PAR")
            .product(AlgExpr::pred("PAR"))
            .select(SelFormula::coords_eq(2, 3))
            .project(vec![1, 4]);
        let algebra = engine.prepare_algebra(&expr, &parent_schema()).unwrap();
        let plain = algebra.execute(&db, Semantics::Limited).unwrap();
        let (traced, span) = algebra.execute_traced(&db, Semantics::Limited).unwrap();
        assert_eq!(plain.result, traced.result);
        assert_eq!(plain.stats.deterministic(), traced.stats.deterministic());
        assert_eq!(span.name, "planned-algebra");
        assert_eq!(span.field("rows_out"), Some(1));
        assert!(span.children[0].name.starts_with("hash-join"));
        assert_eq!(span.subtree_total("join_probes"), traced.stats.join_probes);
        assert_eq!(
            span.subtree_total("tuples_materialised"),
            traced.stats.tuples_materialised
        );

        // Tree walker and tuple-at-a-time algebra: whole-evaluation spans.
        let legacy = Engine::builder()
            .use_compiled(false)
            .use_algebra_planner(false)
            .build();
        let (_, span) = legacy
            .prepare(&grandparent_query())
            .unwrap()
            .execute_traced(&db, Semantics::Limited)
            .unwrap();
        assert_eq!(span.name, "tree-walk");
        let (_, span) = legacy
            .prepare_algebra(&expr, &parent_schema())
            .unwrap()
            .execute_traced(&db, Semantics::Limited)
            .unwrap();
        assert_eq!(span.name, "tuple-algebra");
        assert_eq!(span.field("rows_out"), Some(1));
    }

    #[test]
    fn execute_with_sink_short_circuits_when_disabled() {
        use itq_trace::{CollectingSink, NoopSink, TraceSink};
        let engine = Engine::new();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let db = db();

        let noop = NoopSink;
        assert!(!noop.is_enabled());
        let quiet = prepared
            .execute_with_sink(&db, Semantics::Limited, &noop)
            .unwrap();

        let collecting = CollectingSink::new();
        let loud = prepared
            .execute_with_sink(&db, Semantics::Limited, &collecting)
            .unwrap();
        assert_eq!(quiet.result, loud.result);
        assert_eq!(quiet.stats.deterministic(), loud.stats.deterministic());
        let spans = collecting.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "compiled-eval");
    }

    #[test]
    fn prepare_stats_time_every_phase() {
        let engine = Engine::new();
        let calculus = engine.prepare(&grandparent_query()).unwrap();
        assert_eq!(calculus.prepare_stats().plan_micros, 0);
        let expr = AlgExpr::pred("PAR")
            .product(AlgExpr::pred("PAR"))
            .select(SelFormula::coords_eq(2, 3))
            .project(vec![1, 4]);
        let algebra = engine.prepare_algebra(&expr, &parent_schema()).unwrap();
        let span = algebra.prepare_stats().to_span();
        assert_eq!(span.name, "prepare");
        assert_eq!(
            span.children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            [
                "typecheck",
                "plan",
                "classify",
                "normalize",
                "compile",
                "analyze"
            ]
        );
        assert_eq!(span.wall_micros, algebra.prepare_stats().total_micros());
    }

    #[test]
    fn zero_deadline_trips_identically_on_every_semantics() {
        let engine = Engine::builder().deadline_millis(0).build();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let db = db();
        for semantics in Semantics::ALL {
            let err = prepared.execute(&db, semantics).unwrap_err();
            assert_eq!(err.to_string(), "execution deadline of 0 ms exceeded");
        }
    }

    #[test]
    fn cancellation_is_recoverable_through_the_shared_flag() {
        let flag = CancelFlag::new();
        let engine = Engine::builder().cancel_flag(flag.clone()).build();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let db = db();
        // Armed but unraised: the execution completes with the exact answer.
        let baseline = Engine::new()
            .prepare(&grandparent_query())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap();
        let ok = prepared.execute(&db, Semantics::Limited).unwrap();
        assert_eq!(ok.result, baseline.result);
        assert!(
            ok.stats.interrupt_polls >= 1,
            "armed runs count their polls"
        );
        // Raised: the next execution stops with the pinned message.
        flag.cancel();
        let err = prepared.execute(&db, Semantics::Limited).unwrap_err();
        assert_eq!(err.to_string(), "execution cancelled");
        // Reset: the same handle executes again, byte-identical to fresh.
        flag.reset();
        let again = prepared.execute(&db, Semantics::Limited).unwrap();
        assert_eq!(again.result, baseline.result);
        assert_eq!(
            again.stats.deterministic().wall_micros,
            0,
            "deterministic() zeroes the non-reproducible fields"
        );
    }

    #[test]
    fn injected_panic_is_contained_as_an_internal_error() {
        let engine = Engine::builder()
            .trip_interrupt_after(1, TripKind::Panic)
            .build();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let db = db();
        let err = prepared.execute(&db, Semantics::Limited).unwrap_err();
        assert_eq!(
            err.to_string(),
            "internal engine error (contained): fault injection: synthetic engine panic"
        );
        // Containment is provable reuse: a sibling handle from an untripped
        // engine executes normally in the same process afterwards.
        let healthy = Engine::new().prepare(&grandparent_query()).unwrap();
        assert_eq!(
            healthy
                .execute(&db, Semantics::Limited)
                .unwrap()
                .result
                .len(),
            1
        );
    }

    #[test]
    fn try_execute_reports_stats_on_the_error_path() {
        let engine = Engine::builder().deadline_millis(0).build();
        let prepared = engine.prepare(&grandparent_query()).unwrap();
        let (result, stats) = prepared.try_execute(&db(), Semantics::Limited);
        assert!(result.is_err());
        assert!(stats.interrupt_polls >= 1);
        assert_eq!(stats.steps, 0, "a stopped run reports no work counters");
        // And on the success path the block matches the outcome's.
        let healthy = Engine::new().prepare(&grandparent_query()).unwrap();
        let (result, stats) = healthy.try_execute(&db(), Semantics::Limited);
        assert_eq!(result.unwrap().stats, stats);
    }

    #[test]
    fn degrade_on_resource_returns_a_sound_finite_invention_prefix() {
        let db = db();
        let exact = Engine::new()
            .prepare(&witness_query())
            .unwrap()
            .execute(&db, Semantics::FiniteInvention)
            .unwrap();
        // Strict mode: a mid-sweep trip is an error.
        let strict = Engine::builder()
            .trip_interrupt_after(3, TripKind::Cancel)
            .build();
        let err = strict
            .prepare(&witness_query())
            .unwrap()
            .execute(&db, Semantics::FiniteInvention)
            .unwrap_err();
        assert_eq!(err.to_string(), "execution cancelled");
        // Degraded mode at the same trip point: a sound under-approximation.
        let degraded = Engine::builder()
            .trip_interrupt_after(3, TripKind::Cancel)
            .degrade_on_resource(true)
            .build();
        let partial = degraded
            .prepare(&witness_query())
            .unwrap()
            .execute(&db, Semantics::FiniteInvention)
            .unwrap();
        assert!(partial.bounded_approximation);
        assert!(partial.stabilised_at.is_none());
        for v in partial.result.iter() {
            assert!(exact.result.contains(v), "degraded answers never fabricate");
        }
    }

    #[test]
    fn memory_ceiling_trips_only_interning_backends() {
        let db = db();
        // The compiled backend interns: a 1-byte ceiling trips immediately.
        let tight = Engine::builder().memory_ceiling(1).build();
        let err = tight
            .prepare(&grandparent_query())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "interned values exceeded the configured memory ceiling of 1 bytes"
        );
        // The tree walker never interns, so the same ceiling never trips.
        let legacy = Engine::builder()
            .memory_ceiling(1)
            .use_compiled(false)
            .build();
        let ok = legacy
            .prepare(&grandparent_query())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap();
        assert_eq!(ok.result.len(), 1);
    }

    #[test]
    fn budget_errors_surface_through_execute() {
        let engine = Engine::builder().calc_config(EvalConfig::tiny()).build();
        let q = Query::new(
            "t",
            Type::set(Type::flat_tuple(2)),
            Formula::truth(),
            parent_schema(),
        )
        .unwrap();
        let prepared = engine.prepare(&q).unwrap();
        assert!(prepared.execute(&db(), Semantics::Limited).is_err());
    }
}
