//! Complexity calculators for Theorem 4.4 and its corollaries.
//!
//! Theorem 4.4 sandwiches the `CALC_{0,i}` families between hyper-exponential
//! time and space classes: `QTIME(H_{i-1}) ⊆ CALC_{0,i} ⊆ QSPACE(H_{i-1})`.  The
//! proof's upper bound rests on the observation that an instantiation of all the
//! query's variables can be written in `O(hyp(w+1, m, i-1))` space, where `w` is
//! the maximum tuple width among the variable types and `m` the size of the
//! active domain.  This module turns those bounds into numbers so the experiment
//! harness can tabulate them next to measured evaluator statistics.

use itq_calculus::Query;
use itq_object::cons::cons_cardinality;
use itq_object::{hyp, Cardinality, Type};

/// The symbolic complexity bounds Theorem 4.4 assigns to a `CALC_{0,i}` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremBounds {
    /// The intermediate-type level `i` of the query.
    pub level: usize,
    /// Human-readable lower bound (`QTIME(H_{i-1}) ⊆ CALC_{0,i}`).
    pub time_lower: String,
    /// Human-readable upper bound (`CALC_{0,i} ⊆ QSPACE(H_{i-1})`).
    pub space_upper: String,
}

/// The Theorem 4.4 bounds for intermediate-type level `i`.
pub fn theorem_4_4_bounds(level: usize) -> TheoremBounds {
    if level == 0 {
        // CALC_{0,0} is the relational calculus: LOGSPACE data complexity
        // (Theorem 4.1, after Vardi).
        return TheoremBounds {
            level,
            time_lower: "first-order (AC0) queries".to_string(),
            space_upper: "O(log n) space (Theorem 4.1)".to_string(),
        };
    }
    TheoremBounds {
        level,
        time_lower: format!("QTIME(H_{}) ⊆ CALC_{{0,{level}}}", level - 1),
        space_upper: format!("CALC_{{0,{level}}} ⊆ QSPACE(H_{})", level - 1),
    }
}

/// Size bound on writing one object of type `ty` over an active domain of `m`
/// atoms, following the case analysis in the proof of Theorem 4.4:
///
/// * set-height 0: `w · m`;
/// * set-height 1: `w · m^w`, i.e. `O(hyp(w+1, m, 0))`;
/// * set-height `j > 1`: `O(hyp(w+1, m, j-1))`.
pub fn object_size_bound(ty: &Type, m: u64) -> Cardinality {
    let w = ty.max_tuple_width() as u32;
    match ty.set_height() {
        0 => Cardinality::from(w as u64) * Cardinality::from(m),
        1 => Cardinality::from(w as u64) * Cardinality::from(m).pow(w),
        j => hyp(w + 1, m, (j - 1) as u32),
    }
}

/// Space bound (in the sense of the Theorem 4.4 proof) for instantiating *all*
/// quantified variables of a query over an active domain of `m` atoms.
pub fn variable_space_bound(query: &Query, m: u64) -> Cardinality {
    query
        .body()
        .quantified_vars()
        .into_iter()
        .map(|(_, ty)| object_size_bound(&ty, m))
        .fold(Cardinality::ZERO, |acc, c| acc + c)
}

/// The number of candidate instantiations the naive evaluator must consider for a
/// single quantifier of type `ty` — `|cons_A(T)|` — together with the
/// hyper-exponential bound `hyp(w, m, sh(T))` the paper compares it against.
pub fn quantifier_domain_bounds(ty: &Type, m: u64) -> (Cardinality, Cardinality) {
    let actual = cons_cardinality(ty, m as usize);
    let bound = hyp(ty.max_tuple_width() as u32, m, ty.set_height() as u32);
    (actual, bound)
}

/// A row of the E7 growth table: how the constructive domain of the canonical
/// "largest" type `T_big(w, i)` grows with the set-height `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthRow {
    /// Set-height of the intermediate type.
    pub level: usize,
    /// Number of atoms in the active domain.
    pub atoms: u64,
    /// Tuple width of `T_big`.
    pub width: usize,
    /// `log2 |cons_A(T_big(w, i))|`.
    pub cons_log2: f64,
    /// `log2 hyp(w, m, i)` — the Theorem 4.4 bound.
    pub hyp_log2: f64,
}

/// Tabulate constructive-domain growth for levels `0..=max_level` over `atoms`
/// atoms with tuple width `width`.
pub fn growth_table(max_level: usize, atoms: u64, width: usize) -> Vec<GrowthRow> {
    (0..=max_level)
        .map(|level| {
            let ty = Type::big(width, level);
            let cons = cons_cardinality(&ty, atoms as usize);
            let bound = hyp(width as u32, atoms, level as u32);
            GrowthRow {
                level,
                atoms,
                width,
                cons_log2: cons.log2().max(0.0),
                hyp_log2: bound.log2().max(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{even_cardinality_query, grandparent_query, transitive_closure_query};

    #[test]
    fn theorem_bounds_text() {
        let b0 = theorem_4_4_bounds(0);
        assert!(b0.space_upper.contains("log"));
        let b1 = theorem_4_4_bounds(1);
        assert!(b1.time_lower.contains("H_0"));
        assert!(b1.space_upper.contains("H_0"));
        let b3 = theorem_4_4_bounds(3);
        assert!(b3.time_lower.contains("H_2"));
        assert_eq!(b3.level, 3);
    }

    #[test]
    fn object_size_bounds_follow_the_case_analysis() {
        let flat = Type::flat_tuple(3);
        assert_eq!(object_size_bound(&flat, 10), Cardinality::Exact(30));
        let height1 = Type::set(Type::flat_tuple(2));
        assert_eq!(object_size_bound(&height1, 10), Cardinality::Exact(200));
        let height2 = Type::set(Type::set(Type::flat_tuple(2)));
        // hyp(3, 10, 1) = 2^(3 * 1000): enormous but with a well-defined log.
        let bound = object_size_bound(&height2, 10);
        assert!(!bound.is_exact());
        assert!((bound.log2() - 3000.0).abs() < 1.0);
    }

    #[test]
    fn variable_space_bound_orders_queries_sensibly() {
        let m = 6;
        let fo = variable_space_bound(&grandparent_query(), m);
        let tc = variable_space_bound(&transitive_closure_query(), m);
        let parity = variable_space_bound(&even_cardinality_query(), m);
        assert!(fo.log2() < tc.log2());
        assert!(fo.log2() < parity.log2());
    }

    #[test]
    fn quantifier_domain_bounds_respect_the_hyp_bound() {
        for level in 0..3usize {
            let ty = Type::big(2, level);
            let (actual, bound) = quantifier_domain_bounds(&ty, 3);
            assert!(actual.log2() <= bound.log2() + 1e-9, "level {level}");
        }
    }

    #[test]
    fn growth_table_is_monotone_and_hyperexponential() {
        let table = growth_table(3, 3, 2);
        assert_eq!(table.len(), 4);
        for pair in table.windows(2) {
            assert!(pair[0].cons_log2 <= pair[1].cons_log2);
            assert!(pair[0].hyp_log2 <= pair[1].hyp_log2);
            assert!(pair[0].cons_log2 <= pair[0].hyp_log2 + 1e-9);
        }
        // Each level gains at least one exponential once past the base level:
        // log2 at level i+1 is at least the *value* at level i (up to constants).
        assert!(table[2].cons_log2 >= table[1].cons_log2 * 2.0);
    }
}
