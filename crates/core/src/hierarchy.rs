//! The `CALC_{0,i}` hierarchy (Theorem 5.1) as measurable counting power.
//!
//! The Hierarchy Theorem states `CALC_{0,i} ⊊ CALC_{0,i+1}` for every `i ≥ 0`.
//! Its proof (via Bennett's spectra theorem) is non-constructive, but the
//! *mechanism* is quantitative: an intermediate type of set-height `i` over an
//! active domain of `m` atoms provides on the order of `hyp(w, m, i)` distinct
//! index values, so queries at level `i` can count (and therefore distinguish
//! input cardinalities) up to one more exponential than queries at level `i-1`.
//! This module tabulates that counting power and packages the bottom-level
//! separation witnesses that are small enough to run.

use crate::queries::{even_cardinality_query, transitive_closure_query};
use itq_calculus::{CalcClass, Query};
use itq_object::{hyp, Cardinality};

/// The counting power available to a level-`i` query over `m` atoms with tuple
/// width `w`: the size of the index space `cons_A(T)` of its largest intermediate
/// type, bounded by `hyp(w, m, i)` (Example 3.5).
pub fn counting_power(width: u32, atoms: u64, level: u32) -> Cardinality {
    hyp(width, atoms, level)
}

/// One row of the hierarchy table: the counting power at a level and the ratio to
/// the previous level.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyRow {
    /// Intermediate-type set-height.
    pub level: u32,
    /// Number of atoms in the active domain.
    pub atoms: u64,
    /// `log2` of the counting power at this level.
    pub power_log2: f64,
    /// `log2` of the counting power at the previous level (0 for level 0).
    pub previous_log2: f64,
}

impl HierarchyRow {
    /// True if this level strictly exceeds the previous one — the executable
    /// shadow of `CALC_{0,i} ⊊ CALC_{0,i+1}`.
    pub fn strictly_gains(&self) -> bool {
        self.power_log2 > self.previous_log2
    }
}

/// Tabulate counting power for levels `0..=max_level`.
pub fn hierarchy_table(width: u32, atoms: u64, max_level: u32) -> Vec<HierarchyRow> {
    (0..=max_level)
        .map(|level| {
            let power_log2 = counting_power(width, atoms, level).log2().max(0.0);
            let previous_log2 = if level == 0 {
                0.0
            } else {
                counting_power(width, atoms, level - 1).log2().max(0.0)
            };
            HierarchyRow {
                level,
                atoms,
                power_log2,
                previous_log2,
            }
        })
        .collect()
}

/// A separation witness at the bottom of the hierarchy: a query together with the
/// class it belongs to and the class it provably lies outside.
#[derive(Debug, Clone)]
pub struct SeparationWitness {
    /// Short name for reports.
    pub name: &'static str,
    /// The witnessing query.
    pub query: Query,
    /// The (minimal) class containing the query.
    pub in_class: CalcClass,
    /// The class the query is not expressible in, per the paper's citation.
    pub outside_class: CalcClass,
    /// The paper's justification.
    pub justification: &'static str,
}

/// The two executable witnesses for `CALC_{0,0} ⊊ CALC_{0,1}`: transitive closure
/// (Example 3.1, not first-order by Aho–Ullman 1979) and even cardinality
/// (Example 3.2, not first-order by a standard Ehrenfeucht–Fraïssé argument).
pub fn level_zero_one_witnesses() -> Vec<SeparationWitness> {
    vec![
        SeparationWitness {
            name: "transitive closure",
            query: transitive_closure_query(),
            in_class: CalcClass::second_order(),
            outside_class: CalcClass::relational(),
            justification: "transitive closure is not expressible in the relational calculus \
                            [AU79]; Example 3.1 expresses it with one set-height-1 intermediate type",
        },
        SeparationWitness {
            name: "even cardinality",
            query: even_cardinality_query(),
            in_class: CalcClass::second_order(),
            outside_class: CalcClass::relational(),
            justification: "parity is not first-order definable; Example 3.2 expresses it with a \
                            set-height-1 pairing variable",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_power_gains_one_exponential_per_level() {
        for atoms in 2..5u64 {
            let table = hierarchy_table(1, atoms, 4);
            assert_eq!(table.len(), 5);
            for row in &table[1..] {
                assert!(
                    row.strictly_gains(),
                    "level {} over {} atoms",
                    row.level,
                    atoms
                );
                // The gain is (at least) exponential: log2 at level i ≥ value at
                // level i-1 (since hyp(c,n,i+1) = 2^(c·hyp(c,n,i))).
                if row.level >= 2 {
                    assert!(
                        row.power_log2 >= (2f64).powf(row.previous_log2.min(50.0)) - 1e-9
                            || row.previous_log2 > 50.0
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_domains_do_not_gain() {
        // Over a single atom with width 1, hyp(1, 1, i) = 2^(…2^1…): still grows,
        // but over zero atoms level 0 has power 0.
        let table = hierarchy_table(1, 0, 2);
        assert_eq!(table[0].power_log2, 0.0);
    }

    #[test]
    fn witnesses_are_classified_as_claimed() {
        for witness in level_zero_one_witnesses() {
            let minimal = witness.query.classification().minimal_class;
            assert_eq!(minimal, witness.in_class, "{}", witness.name);
            assert!(
                !minimal.contained_in(&witness.outside_class),
                "{} should not be syntactically inside {}",
                witness.name,
                witness.outside_class
            );
            assert!(!witness.justification.is_empty());
        }
    }
}
