#![forbid(unsafe_code)]

//! # itq-core — intermediate-type queries as a usable library
//!
//! This crate is the front door of the reproduction of Hull & Su,
//! *"On the Expressive Power of Database Queries with Intermediate Types"*
//! (PODS 1988 / JCSS 1991).  It assembles the substrates
//! (`itq-object`, `itq-calculus`, `itq-algebra`, `itq-relational`, `itq-turing`,
//! `itq-invention`) into:
//!
//! * a library of the paper's **canonical queries** ([`queries`]): the grandparent
//!   query of Example 2.4, the transitive-closure query of Example 3.1, the
//!   even-cardinality query of Example 3.2, the total-order query of Example 3.4,
//!   and a scaled-down analogue of the exponent-equation family of Example 3.7;
//! * the **complexity calculators** of Theorem 4.4 ([`complexity`]): hyper-
//!   exponential bounds on constructive domains and on the space needed to
//!   instantiate a query's variables;
//! * the **hierarchy analysis** of Theorem 5.1 ([`hierarchy`]): the per-level
//!   counting power that makes `CALC_{0,i} ⊊ CALC_{0,i+1}`;
//! * an [`Engine`](engine::Engine) facade with a prepare-once / execute-many
//!   [`pipeline`]: [`Engine::prepare`](engine::Engine::prepare) does the static
//!   work (typing, classification, normal forms, Theorem 3.8 compilation)
//!   exactly once, and the resulting [`Prepared`](pipeline::Prepared) handle
//!   executes on any database under the limited interpretation or the
//!   invented-value semantics of Section 6, returning one unified
//!   [`QueryOutcome`](pipeline::QueryOutcome) with execution statistics;
//! * a **mutable, versioned database** with watched queries ([`incremental`]):
//!   inserts and deletes commit datafrog-style stable/recent/to-add tiers in
//!   interned-value space, and registered views stay warm — refreshed by
//!   semi-naive delta rules where the query shape allows, by guarded
//!   re-execution elsewhere.
//!
//! ## Quickstart
//!
//! ```
//! use itq_core::prelude::*;
//!
//! // Build the PAR database of Example 2.4.
//! let mut universe = Universe::new();
//! let (tom, mary, sue) = (universe.atom("Tom"), universe.atom("Mary"), universe.atom("Sue"));
//! let db = Database::single("PAR", Instance::from_pairs(vec![(tom, mary), (mary, sue)]));
//!
//! // The transitive-closure query of Example 3.1 lives in CALC_{0,1}.
//! let query = itq_core::queries::transitive_closure_query();
//!
//! // Prepare once (typing + classification + normal forms), execute many.
//! let engine = Engine::builder().universe(universe.clone()).build();
//! let prepared = engine.prepare(&query).unwrap();
//! assert_eq!(prepared.classification().minimal_class, CalcClass::second_order());
//! let outcome = prepared.execute(&db, Semantics::Limited).unwrap();
//! assert!(outcome.result.contains(&Value::pair(tom, sue)));
//! assert!(outcome.stats.steps > 0);
//! ```

pub mod complexity;
pub mod engine;
pub mod hierarchy;
pub mod incremental;
pub mod pipeline;
pub mod queries;
pub mod report;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::engine::{Engine, EngineError, GovernorConfig, Semantics};
    pub use crate::incremental::{
        IncrementalDb, IncrementalError, MutationOutcome, RefreshPath, ViewRefresh, WatchedView,
    };
    pub use crate::pipeline::{EngineBuilder, ExecStats, PrepareStats, Prepared, QueryOutcome};
    pub use crate::queries;
    pub use itq_algebra::{AlgExpr, PhysicalPlan, SelFormula};
    pub use itq_calculus::{CalcClass, CompiledQuery, EvalConfig, Evaluable, Formula, Query, Term};
    pub use itq_invention::{InventionConfig, TerminalOutcome, UniversalCodec};
    pub use itq_object::{
        Atom, CancelFlag, Database, Instance, Interrupt, ResourceError, Schema, TripKind, Type,
        Universe, Value,
    };
    pub use itq_relational::Relation;
}
