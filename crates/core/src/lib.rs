//! # itq-core — intermediate-type queries as a usable library
//!
//! This crate is the front door of the reproduction of Hull & Su,
//! *"On the Expressive Power of Database Queries with Intermediate Types"*
//! (PODS 1988 / JCSS 1991).  It assembles the substrates
//! (`itq-object`, `itq-calculus`, `itq-algebra`, `itq-relational`, `itq-turing`,
//! `itq-invention`) into:
//!
//! * a library of the paper's **canonical queries** ([`queries`]): the grandparent
//!   query of Example 2.4, the transitive-closure query of Example 3.1, the
//!   even-cardinality query of Example 3.2, the total-order query of Example 3.4,
//!   and a scaled-down analogue of the exponent-equation family of Example 3.7;
//! * the **complexity calculators** of Theorem 4.4 ([`complexity`]): hyper-
//!   exponential bounds on constructive domains and on the space needed to
//!   instantiate a query's variables;
//! * the **hierarchy analysis** of Theorem 5.1 ([`hierarchy`]): the per-level
//!   counting power that makes `CALC_{0,i} ⊊ CALC_{0,i+1}`;
//! * an [`Engine`](engine::Engine) facade that evaluates queries under the
//!   limited interpretation, under the algebra, or under the invented-value
//!   semantics of Section 6, with uniform statistics.
//!
//! ## Quickstart
//!
//! ```
//! use itq_core::prelude::*;
//!
//! // Build the PAR database of Example 2.4.
//! let mut universe = Universe::new();
//! let (tom, mary, sue) = (universe.atom("Tom"), universe.atom("Mary"), universe.atom("Sue"));
//! let db = Database::single("PAR", Instance::from_pairs(vec![(tom, mary), (mary, sue)]));
//!
//! // The transitive-closure query of Example 3.1 lives in CALC_{0,1}.
//! let query = itq_core::queries::transitive_closure_query();
//! assert_eq!(query.classification().minimal_class, CalcClass::second_order());
//!
//! // Evaluate it and compare with the relational baseline.
//! let engine = Engine::new();
//! let answer = engine.eval_calculus(&query, &db).unwrap();
//! assert!(answer.result.contains(&Value::pair(tom, sue)));
//! ```

pub mod complexity;
pub mod engine;
pub mod hierarchy;
pub mod queries;
pub mod report;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::engine::{Engine, Semantics};
    pub use crate::queries;
    pub use itq_algebra::{AlgExpr, SelFormula};
    pub use itq_calculus::{CalcClass, EvalConfig, Formula, Query, Term};
    pub use itq_invention::{InventionConfig, TerminalOutcome, UniversalCodec};
    pub use itq_object::{Atom, Database, Instance, Schema, Type, Universe, Value};
    pub use itq_relational::Relation;
}
