//! Formula-building shorthands used throughout the paper's examples.
//!
//! The paper freely uses abbreviations such as "the tuple `[y1, y2]` is in `x`"
//! (an existential over a pair variable), subset and emptiness tests, and the
//! total-order formula `ORD_T` of Example 3.4.  This module provides those
//! shorthands as plain functions producing [`Formula`]s, so that the canonical
//! queries in `itq-core` read almost exactly like the paper.
//!
//! All helpers take an explicit `fresh` prefix for the auxiliary bound variables
//! they introduce, so callers can keep variable names disjoint.

use crate::formula::Formula;
use crate::term::Term;
use itq_object::Type;

/// The shorthand "`[a, b] ∈ set`" for a set of pairs with component type `elem`:
/// `∃z/[elem, elem] (z ∈ set ∧ z.1 ≈ a ∧ z.2 ≈ b)`.
///
/// `elem` must be the atomic type or a set type so that `[elem, elem]` is a legal
/// pair type (the paper's "no consecutive tuples" rule); the canonical uses are
/// pairs of atoms.
pub fn pair_in_set(a: Term, b: Term, set: Term, elem: Type, fresh: &str) -> Formula {
    let z = format!("{fresh}_pair");
    let pair_ty = Type::tuple(vec![elem.clone(), elem]);
    Formula::exists(
        &z,
        pair_ty,
        Formula::and(vec![
            Formula::member(Term::var(&z), set),
            Formula::eq(Term::proj(&z, 1), a),
            Formula::eq(Term::proj(&z, 2), b),
        ]),
    )
}

/// Subset test `x ⊆ y` for two terms of type `{elem}`:
/// `∀v/elem (v ∈ x → v ∈ y)`.
pub fn subset(x: Term, y: Term, elem: Type, fresh: &str) -> Formula {
    let v = format!("{fresh}_sub");
    Formula::forall(
        &v,
        elem,
        Formula::implies(
            Formula::member(Term::var(&v), x),
            Formula::member(Term::var(&v), y),
        ),
    )
}

/// Extensional set equality `x ≐ y` expressed with quantifiers rather than the
/// built-in `≈` (useful when exercising the evaluator on pure logic).
pub fn set_equal_extensional(x: Term, y: Term, elem: Type, fresh: &str) -> Formula {
    Formula::and(vec![
        subset(x.clone(), y.clone(), elem.clone(), &format!("{fresh}_l")),
        subset(y, x, elem, &format!("{fresh}_r")),
    ])
}

/// Emptiness test `x ≈ ∅` for a term of type `{elem}`:
/// `∀v/elem ¬(v ∈ x)` — the paper's `x ≈ ∅` shorthand.
pub fn is_empty(x: Term, elem: Type, fresh: &str) -> Formula {
    let v = format!("{fresh}_emp");
    Formula::forall(&v, elem, Formula::not(Formula::member(Term::var(&v), x)))
}

/// Non-emptiness test: `∃v/elem (v ∈ x)`.
pub fn is_nonempty(x: Term, elem: Type, fresh: &str) -> Formula {
    let v = format!("{fresh}_ne");
    Formula::exists(&v, elem, Formula::member(Term::var(&v), x))
}

/// Membership of an atom in a unary predicate, i.e. just `P(a)` — provided for
/// symmetry with the other helpers.
pub fn in_pred(pred: &str, a: Term) -> Formula {
    Formula::pred(pred, a)
}

/// The total-order formula `ORD_U(x)` of Example 3.4 specialised to the atomic
/// type: `x` (of type `{[U, U]}`) holds a reflexive, antisymmetric, transitive and
/// total relation on the atoms of the current constructive domain — i.e. a total
/// order on the active domain.
///
/// Combined with an existential quantifier, this is how calculus queries "create"
/// the ordering needed to index Turing-machine computations (Remark 3.6).
pub fn ord_atoms(x: Term, fresh: &str) -> Formula {
    let u = format!("{fresh}_u");
    let v = format!("{fresh}_v");
    let w = format!("{fresh}_w");

    let totality = Formula::forall_many(
        &[&u, &v],
        Type::Atomic,
        Formula::or(vec![
            pair_in_set(
                Term::var(&u),
                Term::var(&v),
                x.clone(),
                Type::Atomic,
                &format!("{fresh}_t1"),
            ),
            pair_in_set(
                Term::var(&v),
                Term::var(&u),
                x.clone(),
                Type::Atomic,
                &format!("{fresh}_t2"),
            ),
        ]),
    );

    let antisymmetry = Formula::forall_many(
        &[&u, &v],
        Type::Atomic,
        Formula::implies(
            Formula::and(vec![
                pair_in_set(
                    Term::var(&u),
                    Term::var(&v),
                    x.clone(),
                    Type::Atomic,
                    &format!("{fresh}_a1"),
                ),
                pair_in_set(
                    Term::var(&v),
                    Term::var(&u),
                    x.clone(),
                    Type::Atomic,
                    &format!("{fresh}_a2"),
                ),
            ]),
            Formula::eq(Term::var(&u), Term::var(&v)),
        ),
    );

    let transitivity = Formula::forall_many(
        &[&u, &v, &w],
        Type::Atomic,
        Formula::implies(
            Formula::and(vec![
                pair_in_set(
                    Term::var(&u),
                    Term::var(&v),
                    x.clone(),
                    Type::Atomic,
                    &format!("{fresh}_r1"),
                ),
                pair_in_set(
                    Term::var(&v),
                    Term::var(&w),
                    x.clone(),
                    Type::Atomic,
                    &format!("{fresh}_r2"),
                ),
            ]),
            pair_in_set(
                Term::var(&u),
                Term::var(&w),
                x,
                Type::Atomic,
                &format!("{fresh}_r3"),
            ),
        ),
    );

    Formula::and(vec![totality, antisymmetry, transitivity])
}

/// "Every pair in `x` is drawn from predicate `pred`" — the typical guard used to
/// keep intermediate relations inside the active domain of a unary predicate.
pub fn pairs_over_pred(x: Term, pred: &str, fresh: &str) -> Formula {
    let z = format!("{fresh}_ov");
    Formula::forall(
        &z,
        Type::flat_tuple(2),
        Formula::implies(
            Formula::member(Term::var(&z), x),
            Formula::and(vec![
                Formula::pred(pred, Term::proj(&z, 1)),
                Formula::pred(pred, Term::proj(&z, 2)),
            ]),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{satisfies_sentence, EvalConfig};
    use crate::query::Query;
    use itq_object::{Atom, Database, Instance, Schema, Value};

    fn unary_db(n: u32) -> Database {
        Database::single("R", Instance::from_atoms((0..n).map(Atom)))
    }

    #[test]
    fn pair_in_set_shorthand_expands_correctly() {
        // Sentence: ∃s/{[U,U]} ([a0, a1] ∈ s ∧ s ⊆ R-pairs) over db with R = {a0,a1}.
        let db = unary_db(2);
        let f = Formula::exists(
            "s",
            Type::set(Type::flat_tuple(2)),
            Formula::and(vec![
                pair_in_set(
                    Term::constant(Atom(0)),
                    Term::constant(Atom(1)),
                    Term::var("s"),
                    Type::Atomic,
                    "h",
                ),
                pairs_over_pred(Term::var("s"), "R", "h2"),
            ]),
        );
        assert!(satisfies_sentence(&f, &db, &[], &EvalConfig::default()).unwrap());
    }

    #[test]
    fn subset_and_set_equality() {
        let db = unary_db(2);
        // ∀x/{U} ∀y/{U} (x ⊆ y ∧ y ⊆ x → x ≈ y): extensionality holds.
        let f = Formula::forall(
            "x",
            Type::set(Type::Atomic),
            Formula::forall(
                "y",
                Type::set(Type::Atomic),
                Formula::implies(
                    set_equal_extensional(Term::var("x"), Term::var("y"), Type::Atomic, "h"),
                    Formula::eq(Term::var("x"), Term::var("y")),
                ),
            ),
        );
        assert!(satisfies_sentence(&f, &db, &[], &EvalConfig::default()).unwrap());
        // And a subset statement that is false: ∀x ∀y (x ⊆ y).
        let g = Formula::forall(
            "x",
            Type::set(Type::Atomic),
            Formula::forall(
                "y",
                Type::set(Type::Atomic),
                subset(Term::var("x"), Term::var("y"), Type::Atomic, "h"),
            ),
        );
        assert!(!satisfies_sentence(&g, &db, &[], &EvalConfig::default()).unwrap());
    }

    #[test]
    fn emptiness_tests() {
        let db = unary_db(2);
        // ∃x/{U} (x ≈ ∅) and ∃x/{U} nonempty(x) both hold over a 2-atom domain.
        let empty = Formula::exists(
            "x",
            Type::set(Type::Atomic),
            is_empty(Term::var("x"), Type::Atomic, "h"),
        );
        let nonempty = Formula::exists(
            "x",
            Type::set(Type::Atomic),
            is_nonempty(Term::var("x"), Type::Atomic, "h"),
        );
        // ∀x (x ≈ ∅) is false.
        let all_empty = Formula::forall(
            "x",
            Type::set(Type::Atomic),
            is_empty(Term::var("x"), Type::Atomic, "h"),
        );
        let cfg = EvalConfig::default();
        assert!(satisfies_sentence(&empty, &db, &[], &cfg).unwrap());
        assert!(satisfies_sentence(&nonempty, &db, &[], &cfg).unwrap());
        assert!(!satisfies_sentence(&all_empty, &db, &[], &cfg).unwrap());
        assert!(
            satisfies_sentence(&in_pred("R", Term::constant(Atom(0))), &db, &[], &cfg).unwrap()
        );
    }

    #[test]
    fn ord_atoms_characterises_total_orders() {
        // Query {x/{[U,U]} | ORD(x)} over a 2-atom domain: the total orders on
        // {a0, a1} are exactly the two linear orders (each reflexive, with one of
        // the two possible orientations of the off-diagonal pair).
        let db = unary_db(2);
        let q = Query::new(
            "x",
            Type::set(Type::flat_tuple(2)),
            ord_atoms(Term::var("x"), "o"),
            Schema::single("R", Type::Atomic),
        )
        .unwrap();
        let out = q.eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(out.len(), 2, "exactly two total orders on two elements");
        let refl: Vec<Value> = vec![Value::pair(Atom(0), Atom(0)), Value::pair(Atom(1), Atom(1))];
        for order in out.iter() {
            let set = order.as_set().unwrap();
            for r in &refl {
                assert!(set.contains(r), "total orders are reflexive");
            }
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn ord_atoms_counts_match_factorial_for_three_atoms() {
        let db = unary_db(3);
        let q = Query::new(
            "x",
            Type::set(Type::flat_tuple(2)),
            ord_atoms(Term::var("x"), "o"),
            Schema::single("R", Type::Atomic),
        )
        .unwrap();
        let out = q.eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(out.len(), 6, "3! total orders on three elements");
    }
}
