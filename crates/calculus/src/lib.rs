#![forbid(unsafe_code)]

//! # itq-calculus — the typed complex object calculus
//!
//! This crate implements the query language at the heart of Hull & Su,
//! *"On the Expressive Power of Database Queries with Intermediate Types"*
//! (PODS 1988 / JCSS 1991), Section 2:
//!
//! * [`Term`]s: constants, variables, and coordinate projections `x.i`;
//! * [`Formula`]s: the atomic formulas `t1 ≈ t2`, `t1 ∈ t2`, `P(t)`, the sentential
//!   connectives, and *typed* quantifiers `(∃x/T φ)`, `(∀x/T φ)`;
//! * type assignments and t-wff checking ([`typing`]);
//! * typed calculus queries `Q = {t/T | φ}` ([`Query`]);
//! * the **limited interpretation** (active-domain) semantics and the generalised
//!   `Q|^Y` semantics parameterised by extra atoms, with explicit evaluation
//!   budgets ([`eval`]);
//! * prenex-normal-form transformation and recognition of the existential fragment
//!   `CALC_{0,1,∃}` ([`normal`]);
//! * classification of a query into the family `CALC_{k,i}` via its intermediate
//!   types ([`classify`]).
//!
//! ## Example — the grandparent query of Example 2.4
//!
//! ```
//! use itq_calculus::{Formula, Query, Term};
//! use itq_calculus::eval::EvalConfig;
//! use itq_object::{Database, Instance, Schema, Type, Universe, Value};
//!
//! let t_pair = Type::flat_tuple(2);
//! let schema = Schema::single("PAR", t_pair.clone());
//!
//! // ψ(t) = ∃x/T1 ∃y/T1 (PAR(x) ∧ PAR(y) ∧ x.2 ≈ y.1 ∧ t.1 ≈ x.1 ∧ t.2 ≈ y.2)
//! let body = Formula::exists(
//!     "x",
//!     t_pair.clone(),
//!     Formula::exists(
//!         "y",
//!         t_pair.clone(),
//!         Formula::and(vec![
//!             Formula::pred("PAR", Term::var("x")),
//!             Formula::pred("PAR", Term::var("y")),
//!             Formula::eq(Term::proj("x", 2), Term::proj("y", 1)),
//!             Formula::eq(Term::proj("t", 1), Term::proj("x", 1)),
//!             Formula::eq(Term::proj("t", 2), Term::proj("y", 2)),
//!         ]),
//!     ),
//! );
//! let query = Query::new("t", t_pair.clone(), body, schema).unwrap();
//!
//! let mut u = Universe::new();
//! let (tom, mary, sue) = (u.atom("Tom"), u.atom("Mary"), u.atom("Sue"));
//! let db = Database::single(
//!     "PAR",
//!     Instance::from_pairs(vec![(tom, mary), (mary, sue)]),
//! );
//!
//! let answer = query.eval(&db, &EvalConfig::default()).unwrap();
//! assert_eq!(answer.values().len(), 1);
//! assert!(answer.contains(&Value::pair(tom, sue)));
//! ```

pub mod builders;
pub mod classify;
pub mod compile;
pub mod error;
pub mod eval;
pub mod formula;
pub mod normal;
pub mod query;
pub mod term;
pub mod typing;

pub use classify::{CalcClass, QueryClassification};
pub use compile::{compile, CompiledQuery, ParallelCompiled, ParallelEvaluation, PartitionStats};
pub use error::CalcError;
pub use eval::{EvalConfig, EvalStats, Evaluable, Evaluation};
pub use formula::Formula;
pub use query::Query;
pub use term::{Term, Var};
pub use typing::TypeEnv;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CalcError>;
