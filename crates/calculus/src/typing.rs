//! Type assignments and t-wff checking (Section 2).
//!
//! The paper assigns types to variables through a *type assignment* α and defines
//! *typed well-formed formulas* (t-wffs) as pairs (φ, α) satisfying natural
//! constraints: the two sides of `≈` have identical types, `∈` relates an element
//! type to its set type, and `P(t)` applies a predicate to a term of its declared
//! type.  Here the assignment of bound variables is carried by the quantifiers
//! themselves, so the checker only needs the types of the *free* variables — for a
//! query, just the target variable — plus the database schema for the predicates.

use crate::error::CalcError;
use crate::formula::Formula;
use crate::term::{Term, Var};
use itq_object::{Schema, Type};
use std::collections::BTreeMap;
use std::fmt;

/// A type assignment for (free) variables.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct TypeEnv {
    map: BTreeMap<Var, Type>,
}

impl TypeEnv {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an assignment from `(variable, type)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Var, Type)>>(pairs: I) -> Self {
        TypeEnv {
            map: pairs.into_iter().collect(),
        }
    }

    /// Assignment with a single binding.
    pub fn single(var: &str, ty: Type) -> Self {
        let mut env = TypeEnv::new();
        env.bind(var, ty);
        env
    }

    /// Bind (or rebind) a variable.
    pub fn bind(&mut self, var: &str, ty: Type) {
        self.map.insert(var.to_string(), ty);
    }

    /// Builder-style binding.
    pub fn with(mut self, var: &str, ty: Type) -> Self {
        self.bind(var, ty);
        self
    }

    /// Remove a binding (the paper's α↑x).
    pub fn unbind(&mut self, var: &str) -> Option<Type> {
        self.map.remove(var)
    }

    /// Look up a variable's type.
    pub fn get(&self, var: &str) -> Option<&Type> {
        self.map.get(var)
    }

    /// Iterate bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Type)> {
        self.map.iter().map(|(v, t)| (v.as_str(), t))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for TypeEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

/// The type of a term under a type environment — the paper's extended type
/// assignment ᾱ.
pub fn term_type(term: &Term, env: &TypeEnv) -> Result<Type, CalcError> {
    match term {
        Term::Const(_) => Ok(Type::Atomic),
        Term::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| CalcError::UnboundVariable { var: v.clone() }),
        Term::Proj(v, i) => {
            let ty = env
                .get(v)
                .ok_or_else(|| CalcError::UnboundVariable { var: v.clone() })?;
            ty.component(*i)
                .cloned()
                .ok_or_else(|| CalcError::BadProjection {
                    var: v.clone(),
                    coordinate: *i,
                    ty: ty.to_string(),
                })
        }
    }
}

/// Check that `(formula, env)` is a t-wff over the given schema.
///
/// `env` must assign types to the formula's free variables (for a query, the
/// target variable).  Bound variables are typed by their quantifiers, with inner
/// bindings shadowing outer ones.
pub fn check_formula(formula: &Formula, schema: &Schema, env: &TypeEnv) -> Result<(), CalcError> {
    let mut env = env.clone();
    check_rec(formula, schema, &mut env)
}

fn check_rec(formula: &Formula, schema: &Schema, env: &mut TypeEnv) -> Result<(), CalcError> {
    match formula {
        Formula::Eq(t1, t2) => {
            let ty1 = term_type(t1, env)?;
            let ty2 = term_type(t2, env)?;
            if ty1 != ty2 {
                return Err(CalcError::EqTypeMismatch {
                    left: ty1.to_string(),
                    right: ty2.to_string(),
                });
            }
            Ok(())
        }
        Formula::Member(t1, t2) => {
            let elem = term_type(t1, env)?;
            let container = term_type(t2, env)?;
            if container.element() != Some(&elem) {
                return Err(CalcError::MemberTypeMismatch {
                    element: elem.to_string(),
                    container: container.to_string(),
                });
            }
            Ok(())
        }
        Formula::Pred(name, t) => {
            let declared = schema
                .type_of(name)
                .ok_or_else(|| CalcError::UnknownPredicate { name: name.clone() })?;
            let arg = term_type(t, env)?;
            if &arg != declared {
                return Err(CalcError::PredTypeMismatch {
                    name: name.clone(),
                    declared: declared.to_string(),
                    argument: arg.to_string(),
                });
            }
            Ok(())
        }
        Formula::Not(f) => check_rec(f, schema, env),
        Formula::And(fs) | Formula::Or(fs) => {
            for f in fs {
                check_rec(f, schema, env)?;
            }
            Ok(())
        }
        Formula::Implies(f1, f2) | Formula::Iff(f1, f2) => {
            check_rec(f1, schema, env)?;
            check_rec(f2, schema, env)
        }
        Formula::Exists(v, ty, f) | Formula::Forall(v, ty, f) => {
            ty.validate()?;
            let shadowed = env.get(v).cloned();
            env.bind(v, ty.clone());
            let result = check_rec(f, schema, env);
            match shadowed {
                Some(old) => env.bind(v, old),
                None => {
                    env.unbind(v);
                }
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itq_object::Atom;

    fn schema() -> Schema {
        Schema::single("PAR", Type::flat_tuple(2)).with("PERSON", Type::Atomic)
    }

    #[test]
    fn term_types_follow_the_extended_assignment() {
        let env = TypeEnv::single("x", Type::flat_tuple(2)).with("s", Type::set(Type::Atomic));
        assert_eq!(term_type(&Term::constant(Atom(1)), &env), Ok(Type::Atomic));
        assert_eq!(
            term_type(&Term::var("s"), &env),
            Ok(Type::set(Type::Atomic))
        );
        assert_eq!(term_type(&Term::proj("x", 2), &env), Ok(Type::Atomic));
        assert!(matches!(
            term_type(&Term::var("missing"), &env),
            Err(CalcError::UnboundVariable { .. })
        ));
        assert!(matches!(
            term_type(&Term::proj("x", 3), &env),
            Err(CalcError::BadProjection { .. })
        ));
        assert!(matches!(
            term_type(&Term::proj("s", 1), &env),
            Err(CalcError::BadProjection { .. })
        ));
    }

    #[test]
    fn well_typed_grandparent_body_checks() {
        let t_pair = Type::flat_tuple(2);
        let body = Formula::exists(
            "x",
            t_pair.clone(),
            Formula::exists(
                "y",
                t_pair.clone(),
                Formula::and(vec![
                    Formula::pred("PAR", Term::var("x")),
                    Formula::pred("PAR", Term::var("y")),
                    Formula::eq(Term::proj("x", 2), Term::proj("y", 1)),
                    Formula::eq(Term::proj("t", 1), Term::proj("x", 1)),
                    Formula::eq(Term::proj("t", 2), Term::proj("y", 2)),
                ]),
            ),
        );
        let env = TypeEnv::single("t", t_pair);
        assert!(check_formula(&body, &schema(), &env).is_ok());
    }

    #[test]
    fn eq_requires_identical_types() {
        let f = Formula::eq(Term::var("x"), Term::var("s"));
        let env = TypeEnv::single("x", Type::Atomic).with("s", Type::set(Type::Atomic));
        assert!(matches!(
            check_formula(&f, &schema(), &env),
            Err(CalcError::EqTypeMismatch { .. })
        ));
    }

    #[test]
    fn membership_requires_matching_set_type() {
        let env = TypeEnv::single("x", Type::Atomic)
            .with("s", Type::set(Type::Atomic))
            .with("r", Type::set(Type::flat_tuple(2)));
        let good = Formula::member(Term::var("x"), Term::var("s"));
        assert!(check_formula(&good, &schema(), &env).is_ok());
        let bad = Formula::member(Term::var("x"), Term::var("r"));
        assert!(matches!(
            check_formula(&bad, &schema(), &env),
            Err(CalcError::MemberTypeMismatch { .. })
        ));
        let not_a_set = Formula::member(Term::var("x"), Term::var("x"));
        assert!(check_formula(&not_a_set, &schema(), &env).is_err());
    }

    #[test]
    fn predicates_must_exist_and_match_types() {
        let env = TypeEnv::single("x", Type::flat_tuple(2)).with("p", Type::Atomic);
        let unknown = Formula::pred("MISSING", Term::var("x"));
        assert!(matches!(
            check_formula(&unknown, &schema(), &env),
            Err(CalcError::UnknownPredicate { .. })
        ));
        let mismatched = Formula::pred("PERSON", Term::var("x"));
        assert!(matches!(
            check_formula(&mismatched, &schema(), &env),
            Err(CalcError::PredTypeMismatch { .. })
        ));
        let ok = Formula::and(vec![
            Formula::pred("PAR", Term::var("x")),
            Formula::pred("PERSON", Term::var("p")),
        ]);
        assert!(check_formula(&ok, &schema(), &env).is_ok());
    }

    #[test]
    fn quantifiers_shadow_and_restore_bindings() {
        // t is the free target of type U; inside, t is re-quantified at [U, U].
        let f = Formula::and(vec![
            Formula::pred("PERSON", Term::var("t")),
            Formula::exists(
                "t",
                Type::flat_tuple(2),
                Formula::pred("PAR", Term::var("t")),
            ),
            // After the quantifier closes, t must again be usable at type U.
            Formula::pred("PERSON", Term::var("t")),
        ]);
        let env = TypeEnv::single("t", Type::Atomic);
        assert!(check_formula(&f, &schema(), &env).is_ok());
    }

    #[test]
    fn unbound_free_variables_are_reported() {
        let f = Formula::pred("PERSON", Term::var("nobody"));
        assert!(matches!(
            check_formula(&f, &schema(), &TypeEnv::new()),
            Err(CalcError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn connectives_propagate_errors() {
        let env = TypeEnv::single("x", Type::Atomic);
        let bad = Formula::eq(Term::var("x"), Term::var("y"));
        for f in [
            Formula::not(bad.clone()),
            Formula::implies(Formula::truth(), bad.clone()),
            Formula::iff(bad.clone(), Formula::truth()),
            Formula::or(vec![Formula::truth(), bad.clone()]),
        ] {
            assert!(check_formula(&f, &schema(), &env).is_err());
        }
    }

    #[test]
    fn env_utilities() {
        let mut env = TypeEnv::from_pairs(vec![("a".to_string(), Type::Atomic)]);
        assert_eq!(env.len(), 1);
        assert!(!env.is_empty());
        env.bind("b", Type::universal());
        assert_eq!(env.iter().count(), 2);
        assert_eq!(env.unbind("a"), Some(Type::Atomic));
        assert_eq!(env.get("a"), None);
        assert!(format!("{env:?}").contains("b"));
    }
}
