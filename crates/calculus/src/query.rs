//! Typed calculus queries `Q = {t/T | φ}` (Section 2).

use crate::classify::{classify, QueryClassification};
use crate::error::CalcError;
use crate::eval::{evaluate, evaluate_with_extra, EvalConfig, Evaluation};
use crate::formula::Formula;
use crate::term::Var;
use crate::typing::{check_formula, TypeEnv};
use itq_object::{Atom, Database, Instance, Schema, Type};
use std::collections::BTreeSet;
use std::fmt;

/// A typed calculus query `{t/T | φ}` from a database schema `D` to a type `T`.
///
/// Construction enforces the paper's well-formedness conditions:
///
/// * the only free variable of `φ` is the target variable `t`;
/// * `(φ, α)` is a t-wff where `α` assigns `T` to `t` and the schema types to the
///   predicate symbols;
/// * every predicate symbol of `φ` is declared by the schema.
#[derive(Clone, PartialEq)]
pub struct Query {
    target: Var,
    target_type: Type,
    body: Formula,
    schema: Schema,
}

impl Query {
    /// Build and validate a query.
    pub fn new(
        target: &str,
        target_type: Type,
        body: Formula,
        schema: Schema,
    ) -> Result<Self, CalcError> {
        target_type.validate()?;
        let free = body.free_vars();
        let extra: Vec<String> = free
            .iter()
            .filter(|v| v.as_str() != target)
            .cloned()
            .collect();
        if !extra.is_empty() {
            return Err(CalcError::ExtraFreeVariables { vars: extra });
        }
        for pred in body.predicates() {
            if !schema.contains(&pred) {
                return Err(CalcError::UnknownPredicate { name: pred });
            }
        }
        let env = TypeEnv::single(target, target_type.clone());
        check_formula(&body, &schema, &env)?;
        Ok(Query {
            target: target.to_string(),
            target_type,
            body,
            schema,
        })
    }

    /// The target variable `t`.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The output type `T`.
    pub fn target_type(&self) -> &Type {
        &self.target_type
    }

    /// The query formula `φ`.
    pub fn body(&self) -> &Formula {
        &self.body
    }

    /// The input database schema `D`.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replace the body with an equivalent formula (used by normal-form
    /// transformations); the result is re-validated.
    pub fn with_body(&self, body: Formula) -> Result<Query, CalcError> {
        Query::new(
            &self.target,
            self.target_type.clone(),
            body,
            self.schema.clone(),
        )
    }

    /// The constants occurring in the query (`adom(Q)`).
    pub fn constants(&self) -> BTreeSet<Atom> {
        self.body.constants()
    }

    /// The atoms over which evaluation of this query on `db` ranges:
    /// `adom(d) ∪ adom(Q)`.
    pub fn evaluation_domain(&self, db: &Database) -> BTreeSet<Atom> {
        let mut atoms = db.active_domain();
        atoms.extend(self.constants());
        atoms
    }

    /// Classify this query into its (minimal) `CALC_{k,i}` family.
    pub fn classification(&self) -> QueryClassification {
        classify(self)
    }

    /// Evaluate the query under the limited interpretation, returning only the
    /// answer instance.
    pub fn eval(&self, db: &Database, config: &EvalConfig) -> Result<Instance, CalcError> {
        Ok(self.eval_full(db, config)?.result)
    }

    /// Evaluate the query under the limited interpretation, returning the answer
    /// together with evaluation statistics.
    pub fn eval_full(&self, db: &Database, config: &EvalConfig) -> Result<Evaluation, CalcError> {
        evaluate(self, db, config)
    }

    /// Evaluate `Q|^Y` where `Y` is the given set of extra (typically invented)
    /// atoms: all variables range over objects constructed from
    /// `Y ∪ adom(d) ∪ adom(Q)`.
    ///
    /// The answer is *not* restricted to the original active domain; the
    /// invented-value semantics of Section 6 (in `itq-invention`) apply that
    /// restriction on top of this primitive.
    pub fn eval_with_extra(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
    ) -> Result<Evaluation, CalcError> {
        evaluate_with_extra(self, db, extra, config)
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}/{} | {:?}}}",
            self.target, self.target_type, self.body
        )
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn par_schema() -> Schema {
        Schema::single("PAR", Type::flat_tuple(2))
    }

    #[test]
    fn construction_validates_free_variables() {
        let body = Formula::pred("PAR", Term::var("t"));
        assert!(Query::new("t", Type::flat_tuple(2), body.clone(), par_schema()).is_ok());
        // A stray free variable is rejected.
        let stray = Formula::and(vec![body, Formula::pred("PAR", Term::var("u"))]);
        assert!(matches!(
            Query::new("t", Type::flat_tuple(2), stray, par_schema()),
            Err(CalcError::ExtraFreeVariables { .. })
        ));
    }

    #[test]
    fn construction_validates_predicates_and_types() {
        let unknown = Formula::pred("NOPE", Term::var("t"));
        assert!(matches!(
            Query::new("t", Type::flat_tuple(2), unknown, par_schema()),
            Err(CalcError::UnknownPredicate { .. })
        ));
        let ill_typed = Formula::pred("PAR", Term::var("t"));
        assert!(matches!(
            Query::new("t", Type::Atomic, ill_typed, par_schema()),
            Err(CalcError::PredTypeMismatch { .. })
        ));
    }

    #[test]
    fn accessors_and_display() {
        let body = Formula::pred("PAR", Term::var("t"));
        let q = Query::new("t", Type::flat_tuple(2), body, par_schema()).unwrap();
        assert_eq!(q.target(), "t");
        assert_eq!(q.target_type(), &Type::flat_tuple(2));
        assert_eq!(q.schema().names(), vec!["PAR"]);
        assert!(q.constants().is_empty());
        let s = q.to_string();
        assert!(s.contains("t/[U, U]"));
        assert!(s.contains("PAR(t)"));
    }

    #[test]
    fn evaluation_domain_includes_query_constants() {
        let c = Atom(42);
        let body = Formula::and(vec![
            Formula::pred("PAR", Term::var("t")),
            Formula::eq(Term::constant(c), Term::constant(c)),
        ]);
        let q = Query::new("t", Type::flat_tuple(2), body, par_schema()).unwrap();
        let db = Database::single("PAR", Instance::from_pairs(vec![(Atom(0), Atom(1))]));
        let dom = q.evaluation_domain(&db);
        assert!(dom.contains(&c));
        assert!(dom.contains(&Atom(0)));
        assert_eq!(dom.len(), 3);
        assert_eq!(q.constants(), BTreeSet::from([c]));
    }

    #[test]
    fn with_body_revalidates() {
        let q = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::pred("PAR", Term::var("t")),
            par_schema(),
        )
        .unwrap();
        let ok = q.with_body(Formula::and(vec![Formula::pred("PAR", Term::var("t"))]));
        assert!(ok.is_ok());
        let bad = q.with_body(Formula::pred("PAR", Term::var("other")));
        assert!(bad.is_err());
    }
}
