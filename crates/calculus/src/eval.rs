//! Evaluation of calculus queries: the limited interpretation and the
//! `Q|^Y` semantics (Sections 2 and 6).
//!
//! Under the limited interpretation all variables range over objects constructed
//! from the active domain of the input database and the query
//! (`X = adom(d) ∪ adom(Q)`); under `Q|^Y` the range extends by the extra atom set
//! `Y`.  Quantifier domains are constructive domains `cons_X(T)` and therefore grow
//! hyper-exponentially with the set-height of `T` — exactly the phenomenon the
//! paper analyses — so the evaluator carries an explicit [`EvalConfig`] budget and
//! reports [`EvalStats`] so the blow-up can be measured rather than merely
//! endured.

use crate::error::CalcError;
use crate::formula::Formula;
use crate::query::Query;
use crate::term::{Term, Var};
use itq_object::cons::{cons_cardinality, ConsIter};
use itq_object::govern::POLL_MASK;
use itq_object::{Atom, Database, Instance, Interrupt, Value};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

/// Budgets and strategy switches for query evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Maximum admissible size of a single quantifier's constructive domain.
    pub max_quantifier_domain: u64,
    /// Maximum admissible size of the candidate domain for the target variable.
    pub max_candidates: u64,
    /// Maximum total number of formula-node evaluations.
    pub max_steps: u64,
    /// When true (the default), `∃` stops at the first witness and `∀` stops at
    /// the first counterexample.  Setting it to false forces full enumeration —
    /// the "naive" strategy ablated in the benchmark harness.
    pub short_circuit: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_quantifier_domain: 1 << 22,
            max_candidates: 1 << 22,
            max_steps: 200_000_000,
            short_circuit: true,
        }
    }
}

impl EvalConfig {
    /// A small budget suitable for unit tests of budget handling.
    pub fn tiny() -> Self {
        EvalConfig {
            max_quantifier_domain: 64,
            max_candidates: 64,
            max_steps: 10_000,
            short_circuit: true,
        }
    }

    /// The naive (no short-circuiting) strategy with default budgets.
    pub fn naive() -> Self {
        EvalConfig {
            short_circuit: false,
            ..Default::default()
        }
    }
}

/// Counters accumulated during one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of formula nodes evaluated.
    pub steps: u64,
    /// Number of values drawn from quantifier domains.
    pub quantifier_values: u64,
    /// Number of candidate output objects tested.
    pub candidates_checked: u64,
    /// The largest single quantifier domain encountered.
    pub max_domain_seen: u64,
    /// Compiled backend only: constructive-domain lookups answered from the
    /// per-execution [`DomainCache`](itq_object::DomainCache) memo (always 0
    /// for the tree walker, which re-enumerates domains lazily).
    pub domain_cache_hits: u64,
    /// Compiled backend only: constructive-domain lookups that had to
    /// materialise a new domain (always 0 for the tree walker).
    pub domain_cache_misses: u64,
    /// Compiled backend only: number of distinct values interned in the
    /// execution's [`ValueStore`](itq_object::ValueStore) (always 0 for the
    /// tree walker, which never interns).
    pub interned_values: u64,
}

impl EvalStats {
    /// Fold another evaluation's counters into this one: additive counters are
    /// summed (saturating, so merging many partitions or levels can never
    /// wrap), `max_domain_seen` takes the maximum.  Used by the invention
    /// semantics, which run one evaluation per invention level, and by the
    /// partitioned evaluator, which merges one block per partition.
    ///
    /// ```
    /// use itq_calculus::eval::EvalStats;
    /// let mut total = EvalStats { steps: 10, max_domain_seen: 4, ..Default::default() };
    /// total.merge(&EvalStats { steps: 5, max_domain_seen: 9, ..Default::default() });
    /// assert_eq!(total.steps, 15);
    /// assert_eq!(total.max_domain_seen, 9);
    /// let mut near_max = EvalStats { steps: u64::MAX - 1, ..Default::default() };
    /// near_max.merge(&EvalStats { steps: 5, ..Default::default() });
    /// assert_eq!(near_max.steps, u64::MAX); // saturates instead of wrapping
    /// ```
    pub fn merge(&mut self, other: &EvalStats) {
        self.steps = self.steps.saturating_add(other.steps);
        self.quantifier_values = self
            .quantifier_values
            .saturating_add(other.quantifier_values);
        self.candidates_checked = self
            .candidates_checked
            .saturating_add(other.candidates_checked);
        self.max_domain_seen = self.max_domain_seen.max(other.max_domain_seen);
        self.domain_cache_hits = self
            .domain_cache_hits
            .saturating_add(other.domain_cache_hits);
        self.domain_cache_misses = self
            .domain_cache_misses
            .saturating_add(other.domain_cache_misses);
        self.interned_values = self.interned_values.saturating_add(other.interned_values);
    }
}

/// The result of evaluating a query: the answer instance plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// The answer, an instance of the query's target type.
    pub result: Instance,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// A value assignment ρ from variables to objects.
type Assignment = BTreeMap<Var, Value>;

struct Evaluator<'a> {
    db: &'a Database,
    atoms: Vec<Atom>,
    config: &'a EvalConfig,
    stats: EvalStats,
    /// The execution's resource governor.  Polled every [`POLL_MASK`]+1 steps
    /// so the poll points coincide with the compiled backend's (both count one
    /// step per formula node).  The tree walker never interns, so its memory
    /// footprint reported to the governor is always 0.
    interrupt: &'a Interrupt,
}

impl<'a> Evaluator<'a> {
    fn bump(&mut self) -> Result<(), CalcError> {
        self.stats.steps += 1;
        if self.stats.steps & POLL_MASK == 0 {
            self.interrupt.check(0)?;
        }
        if self.stats.steps > self.config.max_steps {
            return Err(CalcError::Budget {
                what: "formula evaluation steps".to_string(),
                limit: self.config.max_steps,
            });
        }
        Ok(())
    }

    /// Evaluate a term to a value, borrowing from the assignment whenever
    /// possible: `Eq`/`Member`/`Pred` checks only *compare* the value, so
    /// set-valued bindings must not be deep-cloned just to be looked at.
    fn eval_term<'r>(&self, term: &Term, rho: &'r Assignment) -> Result<Cow<'r, Value>, CalcError> {
        match term {
            Term::Const(a) => Ok(Cow::Owned(Value::Atom(*a))),
            Term::Var(v) => rho
                .get(v)
                .map(Cow::Borrowed)
                .ok_or_else(|| CalcError::UnboundVariable { var: v.clone() }),
            Term::Proj(v, i) => {
                let val = rho
                    .get(v)
                    .ok_or_else(|| CalcError::UnboundVariable { var: v.clone() })?;
                val.project(*i)
                    .map(Cow::Borrowed)
                    .ok_or_else(|| CalcError::BadProjection {
                        var: v.clone(),
                        coordinate: *i,
                        ty: format!("value {val}"),
                    })
            }
        }
    }

    fn quantifier_domain(&mut self, ty: &itq_object::Type) -> Result<ConsIter, CalcError> {
        let card = cons_cardinality(ty, self.atoms.len());
        if !card.fits_within(self.config.max_quantifier_domain) {
            return Err(CalcError::Budget {
                what: format!(
                    "quantifier domain cons_X({ty}) of size {card} over {} atoms",
                    self.atoms.len()
                ),
                limit: self.config.max_quantifier_domain,
            });
        }
        let size = card.saturating_u64();
        if size > self.stats.max_domain_seen {
            self.stats.max_domain_seen = size;
        }
        Ok(ConsIter::new(ty, &self.atoms))
    }

    fn satisfies(&mut self, formula: &Formula, rho: &mut Assignment) -> Result<bool, CalcError> {
        self.bump()?;
        match formula {
            Formula::Eq(t1, t2) => Ok(self.eval_term(t1, rho)? == self.eval_term(t2, rho)?),
            Formula::Member(t1, t2) => {
                let elem = self.eval_term(t1, rho)?;
                let container = self.eval_term(t2, rho)?;
                Ok(elem.is_member_of(&container))
            }
            Formula::Pred(name, t) => {
                let val = self.eval_term(t, rho)?;
                let relation = self
                    .db
                    .relation(name)
                    .ok_or_else(|| CalcError::UnknownPredicate { name: name.clone() })?;
                Ok(relation.contains(&val))
            }
            Formula::Not(f) => Ok(!self.satisfies(f, rho)?),
            Formula::And(fs) => {
                let mut all = true;
                for f in fs {
                    let holds = self.satisfies(f, rho)?;
                    if !holds {
                        all = false;
                        if self.config.short_circuit {
                            return Ok(false);
                        }
                    }
                }
                Ok(all)
            }
            Formula::Or(fs) => {
                let mut any = false;
                for f in fs {
                    let holds = self.satisfies(f, rho)?;
                    if holds {
                        any = true;
                        if self.config.short_circuit {
                            return Ok(true);
                        }
                    }
                }
                Ok(any)
            }
            Formula::Implies(f1, f2) => {
                let antecedent = self.satisfies(f1, rho)?;
                if !antecedent && self.config.short_circuit {
                    return Ok(true);
                }
                let consequent = self.satisfies(f2, rho)?;
                Ok(!antecedent || consequent)
            }
            Formula::Iff(f1, f2) => {
                let a = self.satisfies(f1, rho)?;
                let b = self.satisfies(f2, rho)?;
                Ok(a == b)
            }
            Formula::Exists(v, ty, f) => {
                let domain = self.quantifier_domain(ty)?;
                // The shadow-save happens once, before the loop; the binding
                // slot is then overwritten in place, so the `String` key is
                // cloned at most once (on the first iteration of an
                // unshadowed variable) instead of once per drawn value.
                let shadowed = rho.get(v).cloned();
                let mut found = false;
                for value in domain {
                    self.stats.quantifier_values += 1;
                    bind(rho, v, value);
                    let holds = self.satisfies(f, rho)?;
                    if holds {
                        found = true;
                        if self.config.short_circuit {
                            break;
                        }
                    }
                }
                restore(rho, v, shadowed);
                Ok(found)
            }
            Formula::Forall(v, ty, f) => {
                let domain = self.quantifier_domain(ty)?;
                let shadowed = rho.get(v).cloned();
                let mut all = true;
                for value in domain {
                    self.stats.quantifier_values += 1;
                    bind(rho, v, value);
                    let holds = self.satisfies(f, rho)?;
                    if !holds {
                        all = false;
                        if self.config.short_circuit {
                            break;
                        }
                    }
                }
                restore(rho, v, shadowed);
                Ok(all)
            }
        }
    }
}

/// Set `var ↦ value`, reusing the existing map entry (and its key allocation)
/// when the variable is already bound.
fn bind(rho: &mut Assignment, var: &str, value: Value) {
    match rho.get_mut(var) {
        Some(slot) => *slot = value,
        None => {
            rho.insert(var.to_string(), value);
        }
    }
}

fn restore(rho: &mut Assignment, var: &str, shadowed: Option<Value>) {
    match shadowed {
        Some(old) => {
            rho.insert(var.to_string(), old);
        }
        None => {
            rho.remove(var);
        }
    }
}

/// Evaluate a query under the limited interpretation (`Y = ∅`).
pub fn evaluate(
    query: &Query,
    db: &Database,
    config: &EvalConfig,
) -> Result<Evaluation, CalcError> {
    evaluate_with_extra(query, db, &[], config)
}

/// Evaluate `Q|^Y` where `Y` is given by `extra`: every variable (including the
/// target) ranges over objects constructed from `Y ∪ adom(d) ∪ adom(Q)`.
pub fn evaluate_with_extra(
    query: &Query,
    db: &Database,
    extra: &[Atom],
    config: &EvalConfig,
) -> Result<Evaluation, CalcError> {
    evaluate_governed(query, db, extra, config, Interrupt::disarmed())
}

/// [`evaluate_with_extra`] under a resource governor: the evaluator polls
/// `interrupt` once on entry and then every [`POLL_MASK`]+1 formula-node
/// evaluations, surfacing deadline expiry, cancellation, and injected faults
/// as [`CalcError::Resource`].
pub fn evaluate_governed(
    query: &Query,
    db: &Database,
    extra: &[Atom],
    config: &EvalConfig,
    interrupt: &Interrupt,
) -> Result<Evaluation, CalcError> {
    // Poll once before any work so a deadline of 0 ms (or a pre-set cancel
    // flag) trips even on queries whose evaluation would finish instantly.
    interrupt.check(0)?;
    let mut atom_set = query.evaluation_domain(db);
    atom_set.extend(extra.iter().copied());
    let atoms: Vec<Atom> = atom_set.into_iter().collect();

    let target_card = cons_cardinality(query.target_type(), atoms.len());
    if !target_card.fits_within(config.max_candidates) {
        return Err(CalcError::Budget {
            what: format!(
                "candidate domain cons_X({}) of size {target_card}",
                query.target_type()
            ),
            limit: config.max_candidates,
        });
    }

    let mut evaluator = Evaluator {
        db,
        atoms: atoms.clone(),
        config,
        stats: EvalStats::default(),
        interrupt,
    };

    let mut result = Instance::empty();
    for candidate in ConsIter::new(query.target_type(), &atoms) {
        evaluator.stats.candidates_checked += 1;
        let mut rho: Assignment = BTreeMap::new();
        rho.insert(query.target().to_string(), candidate.clone());
        if evaluator.satisfies(query.body(), &mut rho)? {
            result.insert(candidate);
        }
    }

    Ok(Evaluation {
        result,
        stats: evaluator.stats,
    })
}

/// A query form that can be evaluated under the generalised `Q|^Y` semantics.
///
/// Both the source-level [`Query`] (tree walker) and the lowered
/// [`CompiledQuery`](crate::compile::CompiledQuery) (slot-based interpreter)
/// implement this, which lets the invention semantics of Section 6 drive
/// either backend through one per-level loop — the compiled form in
/// particular is lowered **once** and re-executed at every invention level
/// instead of being re-derived.
pub trait Evaluable {
    /// Evaluate `Q|^Y` where `Y` is given by `extra`: every variable
    /// (including the target) ranges over objects constructed from
    /// `Y ∪ adom(d) ∪ adom(Q)`.
    fn eval_with_extra(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
    ) -> Result<Evaluation, CalcError>;

    /// [`Evaluable::eval_with_extra`] under a resource governor: the backend
    /// polls `interrupt` once on entry and then at quantifier-iteration
    /// granularity.  The default implementation polls only on entry and
    /// otherwise runs ungoverned; both built-in backends override it with
    /// full-granularity polling.
    fn eval_governed(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
    ) -> Result<Evaluation, CalcError> {
        interrupt.check(0)?;
        self.eval_with_extra(db, extra, config)
    }

    /// The atoms over which evaluation of this query on `db` ranges:
    /// `adom(d) ∪ adom(Q)`.
    fn evaluation_domain(&self, db: &Database) -> BTreeSet<Atom>;
}

impl Evaluable for Query {
    fn eval_with_extra(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
    ) -> Result<Evaluation, CalcError> {
        evaluate_with_extra(self, db, extra, config)
    }

    fn eval_governed(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
    ) -> Result<Evaluation, CalcError> {
        evaluate_governed(self, db, extra, config, interrupt)
    }

    fn evaluation_domain(&self, db: &Database) -> BTreeSet<Atom> {
        Query::evaluation_domain(self, db)
    }
}

/// Decide whether a *sentence* (a formula with no free variables) holds on `db`
/// over the atom set `X = adom(d) ∪ constants(φ) ∪ extra`.
///
/// This is the building block used by experiment code that wants to check a
/// closed condition (e.g. "there exists a successful TM computation") without
/// wrapping it in a query.
pub fn satisfies_sentence(
    sentence: &Formula,
    db: &Database,
    extra: &[Atom],
    config: &EvalConfig,
) -> Result<bool, CalcError> {
    let mut atom_set = db.active_domain();
    atom_set.extend(sentence.constants());
    atom_set.extend(extra.iter().copied());
    let atoms: Vec<Atom> = atom_set.into_iter().collect();
    let mut evaluator = Evaluator {
        db,
        atoms,
        config,
        stats: EvalStats::default(),
        interrupt: Interrupt::disarmed(),
    };
    let mut rho = BTreeMap::new();
    evaluator.satisfies(sentence, &mut rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itq_object::{Schema, Type, Universe};

    fn par_db(universe: &mut Universe, edges: &[(&str, &str)]) -> Database {
        let pairs: Vec<(Atom, Atom)> = edges
            .iter()
            .map(|(a, b)| (universe.atom(a), universe.atom(b)))
            .collect();
        Database::single("PAR", Instance::from_pairs(pairs))
    }

    fn grandparent_query() -> Query {
        let t_pair = Type::flat_tuple(2);
        let body = Formula::exists(
            "x",
            t_pair.clone(),
            Formula::exists(
                "y",
                t_pair.clone(),
                Formula::and(vec![
                    Formula::pred("PAR", Term::var("x")),
                    Formula::pred("PAR", Term::var("y")),
                    Formula::eq(Term::proj("x", 2), Term::proj("y", 1)),
                    Formula::eq(Term::proj("t", 1), Term::proj("x", 1)),
                    Formula::eq(Term::proj("t", 2), Term::proj("y", 2)),
                ]),
            ),
        );
        Query::new(
            "t",
            t_pair,
            body,
            Schema::single("PAR", Type::flat_tuple(2)),
        )
        .unwrap()
    }

    #[test]
    fn example_2_4_grandparent() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("Tom", "Mary"), ("Mary", "Sue"), ("Sue", "Ann")]);
        let q = grandparent_query();
        let out = q.eval(&db, &EvalConfig::default()).unwrap();
        let expect = Instance::from_pairs(vec![
            (u.atom("Tom"), u.atom("Sue")),
            (u.atom("Mary"), u.atom("Ann")),
        ]);
        assert_eq!(out, expect);
    }

    #[test]
    fn naive_and_short_circuit_strategies_agree() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c")]);
        let q = grandparent_query();
        let fast = q.eval_full(&db, &EvalConfig::default()).unwrap();
        let naive = q.eval_full(&db, &EvalConfig::naive()).unwrap();
        assert_eq!(fast.result, naive.result);
        // The naive strategy does at least as much work.
        assert!(naive.stats.steps >= fast.stats.steps);
    }

    #[test]
    fn stats_are_populated() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c")]);
        let q = grandparent_query();
        let ev = q.eval_full(&db, &EvalConfig::default()).unwrap();
        assert!(ev.stats.steps > 0);
        assert!(ev.stats.candidates_checked >= 9); // 3 atoms → 9 candidate pairs
        assert!(ev.stats.quantifier_values > 0);
        assert!(ev.stats.max_domain_seen >= 9);
    }

    #[test]
    fn budget_on_quantifier_domains_is_enforced() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        // ∃x/{[U,U]} (t ∈ x): quantifier domain is 2^16 over 4 atoms.
        let t_pair = Type::flat_tuple(2);
        let body = Formula::exists(
            "x",
            Type::set(t_pair.clone()),
            Formula::member(Term::var("t"), Term::var("x")),
        );
        let q = Query::new(
            "t",
            t_pair,
            body,
            Schema::single("PAR", Type::flat_tuple(2)),
        )
        .unwrap();
        let err = q.eval(&db, &EvalConfig::tiny()).unwrap_err();
        assert!(matches!(err, CalcError::Budget { .. }));
        // With a generous budget it succeeds and returns every pair over adom.
        let out = q.eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn budget_on_candidates_is_enforced() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        let q = Query::new(
            "t",
            Type::set(Type::flat_tuple(2)),
            Formula::truth(),
            Schema::single("PAR", Type::flat_tuple(2)),
        )
        .unwrap();
        assert!(matches!(
            q.eval(&db, &EvalConfig::tiny()),
            Err(CalcError::Budget { .. })
        ));
    }

    #[test]
    fn step_budget_is_enforced() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        let q = grandparent_query();
        let config = EvalConfig {
            max_steps: 5,
            ..EvalConfig::default()
        };
        assert!(matches!(
            q.eval(&db, &config),
            Err(CalcError::Budget { .. })
        ));
    }

    #[test]
    fn constants_enter_the_evaluation_domain() {
        // {t/U | t ≈ c} over an empty database returns {c} because adom(Q) = {c}.
        let c = Atom(77);
        let q = Query::new(
            "t",
            Type::Atomic,
            Formula::eq(Term::var("t"), Term::constant(c)),
            Schema::single("R", Type::Atomic),
        )
        .unwrap();
        let db = Database::single("R", Instance::empty());
        let out = q.eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(out, Instance::from_atoms(vec![c]));
    }

    #[test]
    fn eval_with_extra_extends_the_range_of_variables() {
        // {t/U | R(t)} ignores extra atoms, but {t/U | ⊤} ranges over them.
        let q_all = Query::new(
            "t",
            Type::Atomic,
            Formula::truth(),
            Schema::single("R", Type::Atomic),
        )
        .unwrap();
        let a = Atom(0);
        let db = Database::single("R", Instance::from_atoms(vec![a]));
        let extra = [Atom(100), Atom(101)];
        let plain = q_all.eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(plain.len(), 1);
        let extended = q_all
            .eval_with_extra(&db, &extra, &EvalConfig::default())
            .unwrap();
        assert_eq!(extended.result.len(), 3);
    }

    #[test]
    fn even_cardinality_query_of_example_3_2() {
        // Q = {t/U | PERSON(t) ∧ ∃x/{[U,U]}(φ1 ∧ φ2 ∧ φ3)} returns PERSON when
        // |PERSON| is even and ∅ when odd.
        let t_pair = Type::flat_tuple(2);
        let phi1 = Formula::forall(
            "y",
            Type::Atomic,
            Formula::implies(
                Formula::pred("PERSON", Term::var("y")),
                Formula::exists(
                    "z",
                    t_pair.clone(),
                    Formula::and(vec![
                        Formula::member(Term::var("z"), Term::var("x")),
                        Formula::or(vec![
                            Formula::eq(Term::proj("z", 1), Term::var("y")),
                            Formula::eq(Term::proj("z", 2), Term::var("y")),
                        ]),
                    ]),
                ),
            ),
        );
        // φ2: the pairs in x are pairwise disjoint and each pair has distinct ends,
        // and both ends are persons (so x is a perfect matching of PERSON).
        let pairwise = Formula::forall(
            "z1",
            t_pair.clone(),
            Formula::forall(
                "z2",
                t_pair.clone(),
                Formula::implies(
                    Formula::and(vec![
                        Formula::member(Term::var("z1"), Term::var("x")),
                        Formula::member(Term::var("z2"), Term::var("x")),
                    ]),
                    Formula::and(vec![
                        // Each pair joins two distinct persons.
                        Formula::not(Formula::eq(Term::proj("z1", 1), Term::proj("z1", 2))),
                        Formula::pred("PERSON", Term::proj("z1", 1)),
                        Formula::pred("PERSON", Term::proj("z1", 2)),
                        // Distinct pairs share no endpoint.
                        Formula::or(vec![
                            Formula::and(vec![
                                Formula::eq(Term::proj("z1", 1), Term::proj("z2", 1)),
                                Formula::eq(Term::proj("z1", 2), Term::proj("z2", 2)),
                            ]),
                            Formula::and(vec![
                                Formula::not(Formula::eq(Term::proj("z1", 1), Term::proj("z2", 1))),
                                Formula::not(Formula::eq(Term::proj("z1", 1), Term::proj("z2", 2))),
                                Formula::not(Formula::eq(Term::proj("z1", 2), Term::proj("z2", 1))),
                                Formula::not(Formula::eq(Term::proj("z1", 2), Term::proj("z2", 2))),
                            ]),
                        ]),
                    ]),
                ),
            ),
        );
        let body = Formula::and(vec![
            Formula::pred("PERSON", Term::var("t")),
            Formula::exists(
                "x",
                Type::set(t_pair.clone()),
                Formula::and(vec![phi1, pairwise]),
            ),
        ]);
        let q = Query::new(
            "t",
            Type::Atomic,
            body,
            Schema::single("PERSON", Type::Atomic),
        )
        .unwrap();

        let mut u = Universe::new();
        let names = ["p1", "p2", "p3", "p4"];
        for n in 1..=4usize {
            let people: Vec<Atom> = names[..n].iter().map(|s| u.atom(s)).collect();
            let db = Database::single("PERSON", Instance::from_atoms(people.clone()));
            let out = q.eval(&db, &EvalConfig::default()).unwrap();
            if n % 2 == 0 {
                assert_eq!(out.len(), n, "even n={n} should return everyone");
            } else {
                assert!(out.is_empty(), "odd n={n} should return nothing");
            }
        }
    }

    #[test]
    fn satisfies_sentence_checks_closed_formulas() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b")]);
        // ∃x/[U,U] PAR(x) is true; ∀x/[U,U] PAR(x) is false (there are 4 pairs).
        let some = Formula::exists(
            "x",
            Type::flat_tuple(2),
            Formula::pred("PAR", Term::var("x")),
        );
        let all = Formula::forall(
            "x",
            Type::flat_tuple(2),
            Formula::pred("PAR", Term::var("x")),
        );
        let cfg = EvalConfig::default();
        assert!(satisfies_sentence(&some, &db, &[], &cfg).unwrap());
        assert!(!satisfies_sentence(&all, &db, &[], &cfg).unwrap());
    }
}
