//! Errors raised while typing or evaluating calculus queries.

use itq_object::{ObjectError, ResourceError};
use std::fmt;

/// Errors produced by the calculus layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CalcError {
    /// A variable was used without being bound by a quantifier or being the
    /// query's target variable.
    UnboundVariable {
        /// The offending variable name.
        var: String,
    },
    /// A variable is quantified twice in the same scope with conflicting types,
    /// or its use conflicts with the declared type.
    ConflictingType {
        /// The offending variable name.
        var: String,
        /// First type seen.
        first: String,
        /// Conflicting type seen.
        second: String,
    },
    /// A coordinate projection `x.i` was applied to a non-tuple variable or with
    /// an out-of-range coordinate.
    BadProjection {
        /// The offending variable name.
        var: String,
        /// The coordinate requested (1-based).
        coordinate: usize,
        /// The type of the variable.
        ty: String,
    },
    /// The two sides of `t1 ≈ t2` have different types.
    EqTypeMismatch {
        /// Rendered left type.
        left: String,
        /// Rendered right type.
        right: String,
    },
    /// In `t1 ∈ t2`, the right-hand side is not of type `{T}` where `T` is the
    /// type of the left-hand side.
    MemberTypeMismatch {
        /// Rendered element type.
        element: String,
        /// Rendered container type.
        container: String,
    },
    /// A predicate symbol used by the formula is not declared by the schema.
    UnknownPredicate {
        /// The missing predicate name.
        name: String,
    },
    /// A predicate atom `P(t)` where `t` does not have the type of `P`.
    PredTypeMismatch {
        /// The predicate name.
        name: String,
        /// Rendered declared type.
        declared: String,
        /// Rendered argument type.
        argument: String,
    },
    /// The query's formula has free variables other than the target variable.
    ExtraFreeVariables {
        /// The offending variable names.
        vars: Vec<String>,
    },
    /// Evaluation exceeded the configured budget.
    Budget {
        /// Human-readable description of what blew up.
        what: String,
        /// The configured limit.
        limit: u64,
    },
    /// An error bubbled up from the object model.
    Object(ObjectError),
    /// The execution's resource governor stopped the evaluation (deadline,
    /// cancellation, or memory ceiling).  Rendered verbatim so the message
    /// stays byte-identical across every backend.
    Resource(ResourceError),
}

impl fmt::Display for CalcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcError::UnboundVariable { var } => write!(f, "unbound variable {var}"),
            CalcError::ConflictingType { var, first, second } => write!(
                f,
                "variable {var} used at conflicting types {first} and {second}"
            ),
            CalcError::BadProjection { var, coordinate, ty } => write!(
                f,
                "projection {var}.{coordinate} is invalid for type {ty}"
            ),
            CalcError::EqTypeMismatch { left, right } => {
                write!(f, "≈ requires identical types, got {left} and {right}")
            }
            CalcError::MemberTypeMismatch { element, container } => write!(
                f,
                "∈ requires the container to have type {{{element}}}, got {container}"
            ),
            CalcError::UnknownPredicate { name } => write!(f, "unknown predicate {name}"),
            CalcError::PredTypeMismatch {
                name,
                declared,
                argument,
            } => write!(
                f,
                "predicate {name} declared at type {declared} but applied to a term of type {argument}"
            ),
            CalcError::ExtraFreeVariables { vars } => write!(
                f,
                "query formula has free variables besides the target: {}",
                vars.join(", ")
            ),
            CalcError::Budget { what, limit } => {
                write!(f, "evaluation budget exceeded: {what} (limit {limit})")
            }
            CalcError::Object(e) => write!(f, "{e}"),
            CalcError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CalcError {}

impl From<ResourceError> for CalcError {
    fn from(e: ResourceError) -> Self {
        CalcError::Resource(e)
    }
}

impl From<ObjectError> for CalcError {
    fn from(e: ObjectError) -> Self {
        match e {
            ObjectError::BudgetExceeded { what, limit } => CalcError::Budget { what, limit },
            other => CalcError::Object(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CalcError, &str)> = vec![
            (
                CalcError::UnboundVariable { var: "x".into() },
                "unbound variable x",
            ),
            (
                CalcError::ConflictingType {
                    var: "x".into(),
                    first: "U".into(),
                    second: "{U}".into(),
                },
                "conflicting types",
            ),
            (
                CalcError::BadProjection {
                    var: "x".into(),
                    coordinate: 3,
                    ty: "U".into(),
                },
                "x.3",
            ),
            (
                CalcError::EqTypeMismatch {
                    left: "U".into(),
                    right: "{U}".into(),
                },
                "identical types",
            ),
            (
                CalcError::MemberTypeMismatch {
                    element: "U".into(),
                    container: "U".into(),
                },
                "container",
            ),
            (
                CalcError::UnknownPredicate { name: "Q".into() },
                "unknown predicate Q",
            ),
            (
                CalcError::PredTypeMismatch {
                    name: "PAR".into(),
                    declared: "[U, U]".into(),
                    argument: "U".into(),
                },
                "PAR",
            ),
            (
                CalcError::ExtraFreeVariables {
                    vars: vec!["y".into(), "z".into()],
                },
                "y, z",
            ),
            (
                CalcError::Budget {
                    what: "quantifier domain".into(),
                    limit: 64,
                },
                "limit 64",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn object_budget_errors_convert_to_calc_budget_errors() {
        let obj = ObjectError::BudgetExceeded {
            what: "cons domain".into(),
            limit: 7,
        };
        match CalcError::from(obj) {
            CalcError::Budget { limit, .. } => assert_eq!(limit, 7),
            other => panic!("expected budget error, got {other:?}"),
        }
        let obj = ObjectError::EmptyTuple;
        assert!(matches!(CalcError::from(obj), CalcError::Object(_)));
    }
}
