//! Normal forms: implication elimination, prenex normal form, and recognition of
//! the existential fragment `CALC_{0,1,∃}` (Section 4, Lemma 4.2).
//!
//! The prenex transformation renames bound variables apart (to globally fresh
//! names) before pulling quantifiers to the front, so no capture can occur.  As
//! usual for classical prenexing of `∀` out of disjunctions/conjunctions, the
//! transformation preserves the limited-interpretation semantics whenever the
//! quantifier domains are non-empty — which is the case exactly when the active
//! domain of the database and query is non-empty, or the quantified types are set
//! types (whose constructive domains always contain `∅`).

use crate::formula::Formula;
use crate::query::Query;
use crate::term::Var;
use itq_object::Type;
use std::fmt;

/// Universal or existential quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `∃`.
    Exists,
    /// `∀`.
    Forall,
}

impl Quantifier {
    /// The dual quantifier (used when pushing negation inward).
    pub fn dual(self) -> Quantifier {
        match self {
            Quantifier::Exists => Quantifier::Forall,
            Quantifier::Forall => Quantifier::Exists,
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "∃"),
            Quantifier::Forall => write!(f, "∀"),
        }
    }
}

/// A formula in prenex normal form: a quantifier prefix and a quantifier-free
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PrenexForm {
    /// The quantifier prefix, outermost first.
    pub prefix: Vec<(Quantifier, Var, Type)>,
    /// The quantifier-free matrix.
    pub matrix: Formula,
}

impl PrenexForm {
    /// Reassemble the prenex form into an ordinary formula.
    pub fn to_formula(&self) -> Formula {
        let mut f = self.matrix.clone();
        for (q, v, ty) in self.prefix.iter().rev() {
            f = match q {
                Quantifier::Exists => Formula::Exists(v.clone(), ty.clone(), Box::new(f)),
                Quantifier::Forall => Formula::Forall(v.clone(), ty.clone(), Box::new(f)),
            };
        }
        f
    }

    /// Number of quantifier alternations in the prefix (0 for a purely
    /// existential or purely universal prefix).
    pub fn alternations(&self) -> usize {
        let mut alt = 0;
        for w in self.prefix.windows(2) {
            if w[0].0 != w[1].0 {
                alt += 1;
            }
        }
        alt
    }
}

/// Rewrite `→` and `↔` in terms of `¬`, `∧`, `∨`.
pub fn eliminate_implications(f: &Formula) -> Formula {
    match f {
        Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..) => f.clone(),
        Formula::Not(inner) => Formula::not(eliminate_implications(inner)),
        Formula::And(fs) => Formula::And(fs.iter().map(eliminate_implications).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(eliminate_implications).collect()),
        Formula::Implies(a, b) => Formula::or(vec![
            Formula::not(eliminate_implications(a)),
            eliminate_implications(b),
        ]),
        Formula::Iff(a, b) => {
            let a = eliminate_implications(a);
            let b = eliminate_implications(b);
            Formula::and(vec![
                Formula::or(vec![Formula::not(a.clone()), b.clone()]),
                Formula::or(vec![Formula::not(b), a]),
            ])
        }
        Formula::Exists(v, ty, inner) => Formula::Exists(
            v.clone(),
            ty.clone(),
            Box::new(eliminate_implications(inner)),
        ),
        Formula::Forall(v, ty, inner) => Formula::Forall(
            v.clone(),
            ty.clone(),
            Box::new(eliminate_implications(inner)),
        ),
    }
}

/// Push negations down to the atomic formulas (negation normal form).  Assumes
/// implications have already been eliminated; any remaining `→`/`↔` are rewritten
/// on the fly.
pub fn negation_normal_form(f: &Formula) -> Formula {
    nnf(&eliminate_implications(f), false)
}

fn nnf(f: &Formula, negate: bool) -> Formula {
    match f {
        Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..) => {
            if negate {
                Formula::not(f.clone())
            } else {
                f.clone()
            }
        }
        Formula::Not(inner) => nnf(inner, !negate),
        Formula::And(fs) => {
            let subs: Vec<Formula> = fs.iter().map(|g| nnf(g, negate)).collect();
            if negate {
                Formula::Or(subs)
            } else {
                Formula::And(subs)
            }
        }
        Formula::Or(fs) => {
            let subs: Vec<Formula> = fs.iter().map(|g| nnf(g, negate)).collect();
            if negate {
                Formula::And(subs)
            } else {
                Formula::Or(subs)
            }
        }
        Formula::Implies(..) | Formula::Iff(..) => nnf(&eliminate_implications(f), negate),
        Formula::Exists(v, ty, inner) => {
            let body = Box::new(nnf(inner, negate));
            if negate {
                Formula::Forall(v.clone(), ty.clone(), body)
            } else {
                Formula::Exists(v.clone(), ty.clone(), body)
            }
        }
        Formula::Forall(v, ty, inner) => {
            let body = Box::new(nnf(inner, negate));
            if negate {
                Formula::Exists(v.clone(), ty.clone(), body)
            } else {
                Formula::Forall(v.clone(), ty.clone(), body)
            }
        }
    }
}

/// Convert a formula into prenex normal form, renaming bound variables apart to
/// fresh names of the shape `q#<n>`.
pub fn to_prenex(f: &Formula) -> PrenexForm {
    let mut counter = 0usize;
    let nnf = negation_normal_form(f);
    prenex_rec(&nnf, &mut counter)
}

fn fresh(counter: &mut usize) -> String {
    let name = format!("q#{counter}");
    *counter += 1;
    name
}

fn prenex_rec(f: &Formula, counter: &mut usize) -> PrenexForm {
    match f {
        Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..) => PrenexForm {
            prefix: vec![],
            matrix: f.clone(),
        },
        Formula::Not(inner) => {
            // After NNF the only negations left sit directly on atoms.
            PrenexForm {
                prefix: vec![],
                matrix: Formula::not(inner.as_ref().clone()),
            }
        }
        Formula::And(fs) | Formula::Or(fs) => {
            let is_and = matches!(f, Formula::And(_));
            let mut prefix = Vec::new();
            let mut matrices = Vec::new();
            for sub in fs {
                let p = prenex_rec(sub, counter);
                prefix.extend(p.prefix);
                matrices.push(p.matrix);
            }
            PrenexForm {
                prefix,
                matrix: if is_and {
                    Formula::And(matrices)
                } else {
                    Formula::Or(matrices)
                },
            }
        }
        Formula::Implies(..) | Formula::Iff(..) => prenex_rec(&eliminate_implications(f), counter),
        Formula::Exists(v, ty, inner) | Formula::Forall(v, ty, inner) => {
            let quant = if matches!(f, Formula::Exists(..)) {
                Quantifier::Exists
            } else {
                Quantifier::Forall
            };
            let new_name = fresh(counter);
            let renamed = inner.rename_free(v, &new_name);
            let mut p = prenex_rec(&renamed, counter);
            let mut prefix = vec![(quant, new_name, ty.clone())];
            prefix.append(&mut p.prefix);
            PrenexForm {
                prefix,
                matrix: p.matrix,
            }
        }
    }
}

/// Classification of a query with respect to the `SF`-style fragment of
/// Theorem 4.3: `CALC_{0,1,∃}` contains the prenex queries mapping flat databases
/// to flat outputs whose variables of set-height ≥ 1 are all existentially
/// quantified and of set-height exactly 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfClassification {
    /// True if input and output types are all flat.
    pub flat_io: bool,
    /// Number of quantified variables with set-height ≥ 1.
    pub higher_order_vars: usize,
    /// True if every higher-order variable is existentially quantified.
    pub all_higher_order_existential: bool,
    /// Maximum set-height over all quantified variables.
    pub max_quantified_height: usize,
}

impl SfClassification {
    /// True if the query lies in `CALC_{0,1,∃}` (after prenexing).
    pub fn is_in_sf(&self) -> bool {
        self.flat_io && self.all_higher_order_existential && self.max_quantified_height <= 1
    }
}

/// Classify a query with respect to the existential fragment `CALC_{0,1,∃}`.
pub fn sf_classification(query: &Query) -> SfClassification {
    let flat_io = query.schema().is_flat() && query.target_type().is_flat();
    let prenex = to_prenex(query.body());
    let mut higher_order_vars = 0;
    let mut all_existential = true;
    let mut max_height = 0;
    for (q, _, ty) in &prenex.prefix {
        let h = ty.set_height();
        max_height = max_height.max(h);
        if h >= 1 {
            higher_order_vars += 1;
            if *q != Quantifier::Exists {
                all_existential = false;
            }
        }
    }
    SfClassification {
        flat_io,
        higher_order_vars,
        all_higher_order_existential: all_existential,
        max_quantified_height: max_height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{satisfies_sentence, EvalConfig};
    use crate::term::Term;
    use itq_object::{Atom, Database, Instance, Schema};

    fn sample_db() -> Database {
        Database::single(
            "PAR",
            Instance::from_pairs(vec![(Atom(0), Atom(1)), (Atom(1), Atom(2))]),
        )
    }

    #[test]
    fn implication_elimination_removes_arrows() {
        let f = Formula::implies(
            Formula::pred("PAR", Term::var("x")),
            Formula::iff(Formula::truth(), Formula::falsity()),
        );
        let g = eliminate_implications(&f);
        g.visit(&mut |sub| {
            assert!(!matches!(sub, Formula::Implies(..) | Formula::Iff(..)));
            true
        });
    }

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let f = Formula::not(Formula::exists(
            "x",
            Type::flat_tuple(2),
            Formula::and(vec![
                Formula::pred("PAR", Term::var("x")),
                Formula::not(Formula::eq(Term::proj("x", 1), Term::proj("x", 2))),
            ]),
        ));
        let g = negation_normal_form(&f);
        // The top-level connective becomes ∀ and negation sits only on atoms.
        assert!(matches!(g, Formula::Forall(..)));
        g.visit(&mut |sub| {
            if let Formula::Not(inner) = sub {
                assert!(matches!(
                    inner.as_ref(),
                    Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..)
                ));
            }
            true
        });
    }

    #[test]
    fn prenex_prefix_collects_all_quantifiers() {
        let f = Formula::and(vec![
            Formula::exists(
                "x",
                Type::flat_tuple(2),
                Formula::pred("PAR", Term::var("x")),
            ),
            Formula::forall(
                "x",
                Type::Atomic,
                Formula::exists(
                    "y",
                    Type::Atomic,
                    Formula::eq(Term::var("x"), Term::var("y")),
                ),
            ),
        ]);
        let p = to_prenex(&f);
        assert_eq!(p.prefix.len(), 3);
        assert!(p.matrix.quantifier_count() == 0);
        // Renaming kept the two distinct x's apart.
        let names: Vec<&str> = p.prefix.iter().map(|(_, v, _)| v.as_str()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| n.starts_with("q#")));
        assert_eq!(p.alternations(), 2); // ∃, ∀, ∃
    }

    #[test]
    fn prenex_preserves_semantics_on_sentences() {
        let db = sample_db();
        let cfg = EvalConfig::default();
        let sentences = vec![
            // ∃x PAR(x) ∧ ¬∀y/U ∃z/[U,U] (PAR(z) ∧ z.1 ≈ y)
            Formula::and(vec![
                Formula::exists(
                    "x",
                    Type::flat_tuple(2),
                    Formula::pred("PAR", Term::var("x")),
                ),
                Formula::not(Formula::forall(
                    "y",
                    Type::Atomic,
                    Formula::exists(
                        "z",
                        Type::flat_tuple(2),
                        Formula::and(vec![
                            Formula::pred("PAR", Term::var("z")),
                            Formula::eq(Term::proj("z", 1), Term::var("y")),
                        ]),
                    ),
                )),
            ]),
            // An implication inside a universal quantifier.
            Formula::forall(
                "z",
                Type::flat_tuple(2),
                Formula::implies(
                    Formula::pred("PAR", Term::var("z")),
                    Formula::not(Formula::eq(Term::proj("z", 1), Term::proj("z", 2))),
                ),
            ),
            // An iff between two closed subformulas.
            Formula::iff(
                Formula::exists(
                    "x",
                    Type::Atomic,
                    Formula::eq(Term::var("x"), Term::var("x")),
                ),
                Formula::exists(
                    "y",
                    Type::flat_tuple(2),
                    Formula::pred("PAR", Term::var("y")),
                ),
            ),
        ];
        for sentence in sentences {
            let direct = satisfies_sentence(&sentence, &db, &[], &cfg).unwrap();
            let prenexed = to_prenex(&sentence).to_formula();
            let via_prenex = satisfies_sentence(&prenexed, &db, &[], &cfg).unwrap();
            assert_eq!(direct, via_prenex, "sentence {sentence}");
        }
    }

    #[test]
    fn sf_classification_recognises_the_existential_fragment() {
        let schema = Schema::single("PAR", Type::flat_tuple(2));
        // ∃x/{[U,U]} (t ∈ x): purely existential height-1 variable → in SF.
        let q_sf = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::exists(
                "x",
                Type::set(Type::flat_tuple(2)),
                Formula::member(Term::var("t"), Term::var("x")),
            ),
            schema.clone(),
        )
        .unwrap();
        let c = sf_classification(&q_sf);
        assert!(c.is_in_sf());
        assert_eq!(c.higher_order_vars, 1);

        // ∀x/{[U,U]} (t ∈ x): universally quantified height-1 variable → not in SF.
        let q_univ = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::forall(
                "x",
                Type::set(Type::flat_tuple(2)),
                Formula::member(Term::var("t"), Term::var("x")),
            ),
            schema.clone(),
        )
        .unwrap();
        assert!(!sf_classification(&q_univ).is_in_sf());

        // Negated existential prenexes to a universal → not in SF.
        let q_neg = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::and(vec![
                Formula::pred("PAR", Term::var("t")),
                Formula::not(Formula::exists(
                    "x",
                    Type::set(Type::flat_tuple(2)),
                    Formula::member(Term::var("t"), Term::var("x")),
                )),
            ]),
            schema.clone(),
        )
        .unwrap();
        assert!(!sf_classification(&q_neg).is_in_sf());

        // A purely first-order query is trivially in SF.
        let q_fo = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::pred("PAR", Term::var("t")),
            schema,
        )
        .unwrap();
        let c = sf_classification(&q_fo);
        assert!(c.is_in_sf());
        assert_eq!(c.higher_order_vars, 0);
        assert_eq!(c.max_quantified_height, 0);
    }

    #[test]
    fn prenex_round_trip_keeps_quantifier_count() {
        let f = Formula::forall(
            "a",
            Type::Atomic,
            Formula::or(vec![
                Formula::exists(
                    "b",
                    Type::Atomic,
                    Formula::eq(Term::var("a"), Term::var("b")),
                ),
                Formula::not(Formula::exists(
                    "c",
                    Type::Atomic,
                    Formula::eq(Term::var("a"), Term::var("c")),
                )),
            ]),
        );
        let p = to_prenex(&f);
        let back = p.to_formula();
        assert_eq!(back.quantifier_count(), 3);
        assert_eq!(to_prenex(&back).prefix.len(), 3);
    }

    #[test]
    fn quantifier_duals() {
        assert_eq!(Quantifier::Exists.dual(), Quantifier::Forall);
        assert_eq!(Quantifier::Forall.dual(), Quantifier::Exists);
        assert_eq!(Quantifier::Exists.to_string(), "∃");
        assert_eq!(Quantifier::Forall.to_string(), "∀");
    }
}
