//! Well-formed formulas of the complex object calculus.
//!
//! Formulas are built from the atomic formulas `t1 ≈ t2`, `t1 ∈ t2`, and `P(t)`
//! using the sentential connectives `¬, ∧, ∨, →, ↔` and the *typed* quantifiers
//! `(∃x/T φ)` and `(∀x/T φ)`.  `∧` and `∨` are represented n-ary for convenience;
//! an empty conjunction is true and an empty disjunction is false.

use crate::term::{Term, Var};
use itq_object::{Atom, PredName, Type};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A formula of the calculus.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    /// `t1 ≈ t2`.
    Eq(Term, Term),
    /// `t1 ∈ t2`.
    Member(Term, Term),
    /// `P(t)`.
    Pred(PredName, Term),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ1 ∧ … ∧ φn` (true when empty).
    And(Vec<Formula>),
    /// `φ1 ∨ … ∨ φn` (false when empty).
    Or(Vec<Formula>),
    /// `φ1 → φ2`.
    Implies(Box<Formula>, Box<Formula>),
    /// `φ1 ↔ φ2`.
    Iff(Box<Formula>, Box<Formula>),
    /// `(∃x/T φ)`.
    Exists(Var, Type, Box<Formula>),
    /// `(∀x/T φ)`.
    Forall(Var, Type, Box<Formula>),
}

impl Formula {
    // ----- constructors -------------------------------------------------------

    /// `t1 ≈ t2`.
    pub fn eq(t1: Term, t2: Term) -> Formula {
        Formula::Eq(t1, t2)
    }

    /// `t1 ∈ t2`.
    pub fn member(t1: Term, t2: Term) -> Formula {
        Formula::Member(t1, t2)
    }

    /// `P(t)`.
    pub fn pred(name: &str, t: Term) -> Formula {
        Formula::Pred(name.to_string(), t)
    }

    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// n-ary conjunction.
    pub fn and(fs: Vec<Formula>) -> Formula {
        Formula::And(fs)
    }

    /// n-ary disjunction.
    pub fn or(fs: Vec<Formula>) -> Formula {
        Formula::Or(fs)
    }

    /// `φ1 → φ2`.
    pub fn implies(f1: Formula, f2: Formula) -> Formula {
        Formula::Implies(Box::new(f1), Box::new(f2))
    }

    /// `φ1 ↔ φ2`.
    pub fn iff(f1: Formula, f2: Formula) -> Formula {
        Formula::Iff(Box::new(f1), Box::new(f2))
    }

    /// `(∃x/T φ)`.
    pub fn exists(var: &str, ty: Type, body: Formula) -> Formula {
        Formula::Exists(var.to_string(), ty, Box::new(body))
    }

    /// Nested existential quantification over several variables of the same type.
    pub fn exists_many(vars: &[&str], ty: Type, body: Formula) -> Formula {
        vars.iter()
            .rev()
            .fold(body, |acc, v| Formula::exists(v, ty.clone(), acc))
    }

    /// `(∀x/T φ)`.
    pub fn forall(var: &str, ty: Type, body: Formula) -> Formula {
        Formula::Forall(var.to_string(), ty, Box::new(body))
    }

    /// Nested universal quantification over several variables of the same type.
    pub fn forall_many(vars: &[&str], ty: Type, body: Formula) -> Formula {
        vars.iter()
            .rev()
            .fold(body, |acc, v| Formula::forall(v, ty.clone(), acc))
    }

    /// The always-true formula (empty conjunction).
    pub fn truth() -> Formula {
        Formula::And(vec![])
    }

    /// The always-false formula (empty disjunction).
    pub fn falsity() -> Formula {
        Formula::Or(vec![])
    }

    // ----- structural queries --------------------------------------------------

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        let mut term = |t: &Term| {
            if let Some(v) = t.variable() {
                if !bound.contains(v) {
                    out.insert(v.clone());
                }
            }
        };
        match self {
            Formula::Eq(t1, t2) | Formula::Member(t1, t2) => {
                term(t1);
                term(t2);
            }
            Formula::Pred(_, t) => term(t),
            Formula::Not(f) => f.collect_free_vars(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_vars(bound, out);
                }
            }
            Formula::Implies(f1, f2) | Formula::Iff(f1, f2) => {
                f1.collect_free_vars(bound, out);
                f2.collect_free_vars(bound, out);
            }
            Formula::Exists(v, _, f) | Formula::Forall(v, _, f) => {
                let newly = bound.insert(v.clone());
                f.collect_free_vars(bound, out);
                if newly {
                    bound.remove(v);
                }
            }
        }
    }

    /// All variables (free or bound) mentioned by the formula.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            match f {
                Formula::Eq(t1, t2) | Formula::Member(t1, t2) => {
                    if let Some(v) = t1.variable() {
                        out.insert(v.clone());
                    }
                    if let Some(v) = t2.variable() {
                        out.insert(v.clone());
                    }
                }
                Formula::Pred(_, t) => {
                    if let Some(v) = t.variable() {
                        out.insert(v.clone());
                    }
                }
                Formula::Exists(v, _, _) | Formula::Forall(v, _, _) => {
                    out.insert(v.clone());
                }
                _ => {}
            }
            true
        });
        out
    }

    /// The constants (elements of `U`) occurring in the formula — the formula's
    /// contribution to `adom(Q)`.
    pub fn constants(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            match f {
                Formula::Eq(t1, t2) | Formula::Member(t1, t2) => {
                    if let Some(a) = t1.constant_atom() {
                        out.insert(a);
                    }
                    if let Some(a) = t2.constant_atom() {
                        out.insert(a);
                    }
                }
                Formula::Pred(_, t) => {
                    if let Some(a) = t.constant_atom() {
                        out.insert(a);
                    }
                }
                _ => {}
            }
            true
        });
        out
    }

    /// The predicate symbols occurring in the formula.
    pub fn predicates(&self) -> BTreeSet<PredName> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Pred(name, _) = f {
                out.insert(name.clone());
            }
            true
        });
        out
    }

    /// The multiset of quantified variables with their declared types, in
    /// left-to-right order of appearance.
    pub fn quantified_vars(&self) -> Vec<(Var, Type)> {
        let mut out = Vec::new();
        self.visit(&mut |f| {
            match f {
                Formula::Exists(v, ty, _) | Formula::Forall(v, ty, _) => {
                    out.push((v.clone(), ty.clone()));
                }
                _ => {}
            }
            true
        });
        out
    }

    /// The set of distinct types used by quantified variables.
    pub fn quantified_types(&self) -> BTreeSet<Type> {
        self.quantified_vars().into_iter().map(|(_, t)| t).collect()
    }

    /// Number of quantifier nodes in the formula.
    pub fn quantifier_count(&self) -> usize {
        self.quantified_vars().len()
    }

    /// Number of nodes in the formula tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| {
            n += 1;
            true
        });
        n
    }

    /// Visit every subformula in pre-order; the callback returns `false` to prune
    /// the walk below the current node.
    pub fn visit(&self, f: &mut dyn FnMut(&Formula) -> bool) {
        if !f(self) {
            return;
        }
        match self {
            Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..) => {}
            Formula::Not(inner) => inner.visit(f),
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    sub.visit(f);
                }
            }
            Formula::Implies(f1, f2) | Formula::Iff(f1, f2) => {
                f1.visit(f);
                f2.visit(f);
            }
            Formula::Exists(_, _, inner) | Formula::Forall(_, _, inner) => inner.visit(f),
        }
    }

    /// Rename every *free* occurrence of `from` to `to` (capture is the caller's
    /// responsibility; the prenex transformation always renames to fresh names).
    pub fn rename_free(&self, from: &str, to: &str) -> Formula {
        match self {
            Formula::Eq(t1, t2) => Formula::Eq(t1.rename(from, to), t2.rename(from, to)),
            Formula::Member(t1, t2) => Formula::Member(t1.rename(from, to), t2.rename(from, to)),
            Formula::Pred(name, t) => Formula::Pred(name.clone(), t.rename(from, to)),
            Formula::Not(f) => Formula::not(f.rename_free(from, to)),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.rename_free(from, to)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.rename_free(from, to)).collect()),
            Formula::Implies(f1, f2) => {
                Formula::implies(f1.rename_free(from, to), f2.rename_free(from, to))
            }
            Formula::Iff(f1, f2) => {
                Formula::iff(f1.rename_free(from, to), f2.rename_free(from, to))
            }
            Formula::Exists(v, ty, f) if v == from => {
                Formula::Exists(v.clone(), ty.clone(), f.clone())
            }
            Formula::Exists(v, ty, f) => {
                Formula::Exists(v.clone(), ty.clone(), Box::new(f.rename_free(from, to)))
            }
            Formula::Forall(v, ty, f) if v == from => {
                Formula::Forall(v.clone(), ty.clone(), f.clone())
            }
            Formula::Forall(v, ty, f) => {
                Formula::Forall(v.clone(), ty.clone(), Box::new(f.rename_free(from, to)))
            }
        }
    }

    /// The types assigned to free variables by their *uses* inside quantifier
    /// bodies cannot be recovered syntactically; this helper instead returns the
    /// map from bound variable to declared type, flagging conflicts (a variable
    /// quantified at two different types in nested scopes is legal in the paper —
    /// the inner binding shadows — so only identical-scope conflicts matter and
    /// those cannot be expressed in this AST).
    pub fn bound_var_types(&self) -> BTreeMap<Var, BTreeSet<Type>> {
        let mut out: BTreeMap<Var, BTreeSet<Type>> = BTreeMap::new();
        for (v, t) in self.quantified_vars() {
            out.entry(v).or_default().insert(t);
        }
        out
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Eq(t1, t2) => write!(f, "{t1} ≈ {t2}"),
            Formula::Member(t1, t2) => write!(f, "{t1} ∈ {t2}"),
            Formula::Pred(name, t) => write!(f, "{name}({t})"),
            Formula::Not(inner) => write!(f, "¬({inner:?})"),
            // A singleton conjunction/disjunction must not print as a bare
            // parenthesized formula: `(φ)` would reparse as φ itself, losing the
            // n-ary node.  The n-ary prefix forms `⋀(φ)` / `⋁(φ)` are unambiguous
            // and are exactly what `itq-surface` parses them back into.
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊤");
                }
                if let [only] = fs.as_slice() {
                    return write!(f, "⋀({only:?})");
                }
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{sub:?}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊥");
                }
                if let [only] = fs.as_slice() {
                    return write!(f, "⋁({only:?})");
                }
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{sub:?}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(f1, f2) => write!(f, "({f1:?} → {f2:?})"),
            Formula::Iff(f1, f2) => write!(f, "({f1:?} ↔ {f2:?})"),
            Formula::Exists(v, ty, inner) => write!(f, "∃{v}/{ty} ({inner:?})"),
            Formula::Forall(v, ty, inner) => write!(f, "∀{v}/{ty} ({inner:?})"),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Formula {
        // ∃x/[U,U] (PAR(x) ∧ x.1 ≈ t.1 ∧ a0 ∈ s)
        Formula::exists(
            "x",
            Type::flat_tuple(2),
            Formula::and(vec![
                Formula::pred("PAR", Term::var("x")),
                Formula::eq(Term::proj("x", 1), Term::proj("t", 1)),
                Formula::member(Term::constant(Atom(0)), Term::var("s")),
            ]),
        )
    }

    #[test]
    fn free_and_bound_variables() {
        let f = sample();
        let free = f.free_vars();
        assert!(free.contains("t"));
        assert!(free.contains("s"));
        assert!(!free.contains("x"));
        let all = f.all_vars();
        assert!(all.contains("x"));
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn shadowing_does_not_leak_bound_variables() {
        // ∀x/U (P(x)) ∧ Q(x): the second x is free.
        let f = Formula::and(vec![
            Formula::forall("x", Type::Atomic, Formula::pred("P", Term::var("x"))),
            Formula::pred("Q", Term::var("x")),
        ]);
        assert!(f.free_vars().contains("x"));
    }

    #[test]
    fn constants_and_predicates() {
        let f = sample();
        assert_eq!(f.constants(), BTreeSet::from([Atom(0)]));
        assert_eq!(f.predicates(), BTreeSet::from(["PAR".to_string()]));
    }

    #[test]
    fn quantified_vars_and_types() {
        let f = Formula::exists(
            "x",
            Type::universal(),
            Formula::forall("y", Type::Atomic, Formula::truth()),
        );
        let qs = f.quantified_vars();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].0, "x");
        assert_eq!(qs[1].1, Type::Atomic);
        assert_eq!(f.quantified_types().len(), 2);
        assert_eq!(f.quantifier_count(), 2);
        let bound = f.bound_var_types();
        assert_eq!(bound["x"], BTreeSet::from([Type::universal()]));
    }

    #[test]
    fn exists_many_and_forall_many_nest_left_to_right() {
        let f = Formula::exists_many(&["a", "b"], Type::Atomic, Formula::truth());
        match &f {
            Formula::Exists(v, _, inner) => {
                assert_eq!(v, "a");
                assert!(matches!(inner.as_ref(), Formula::Exists(w, _, _) if w == "b"));
            }
            _ => panic!("expected nested exists"),
        }
        let g = Formula::forall_many(&["a", "b"], Type::Atomic, Formula::falsity());
        assert_eq!(g.quantifier_count(), 2);
    }

    #[test]
    fn rename_free_respects_binders() {
        let f = Formula::and(vec![
            Formula::pred("P", Term::var("x")),
            Formula::exists("x", Type::Atomic, Formula::pred("Q", Term::var("x"))),
        ]);
        let g = f.rename_free("x", "z");
        // The free occurrence is renamed, the bound one is untouched.
        assert!(g.free_vars().contains("z"));
        assert!(!g.free_vars().contains("x"));
        match &g {
            Formula::And(fs) => match &fs[1] {
                exists @ Formula::Exists(v, _, inner) => {
                    assert_eq!(v, "x");
                    // The bound occurrence of x inside the quantifier is untouched
                    // and remains closed once the binder is taken into account.
                    assert!(exists.free_vars().is_empty());
                    assert!(inner.free_vars().contains("x"));
                }
                _ => panic!("expected exists"),
            },
            _ => panic!("expected and"),
        }
    }

    #[test]
    fn display_round_trips_connective_structure() {
        let f = sample();
        let s = f.to_string();
        assert!(s.contains("∃x/[U, U]"));
        assert!(s.contains("PAR(x)"));
        assert!(s.contains("x.1 ≈ t.1"));
        assert!(s.contains("∈"));
        assert_eq!(Formula::truth().to_string(), "⊤");
        assert_eq!(Formula::falsity().to_string(), "⊥");
        let imp = Formula::implies(Formula::truth(), Formula::falsity());
        assert_eq!(imp.to_string(), "(⊤ → ⊥)");
        let iff = Formula::iff(Formula::truth(), Formula::falsity());
        assert!(iff.to_string().contains("↔"));
        let neg = Formula::not(Formula::truth());
        assert!(neg.to_string().starts_with("¬"));
    }

    #[test]
    fn singleton_connectives_display_unambiguously() {
        // `(φ)` would be indistinguishable from a parenthesized φ, so the
        // one-element conjunction/disjunction use the n-ary prefix forms.
        let p = Formula::pred("P", Term::var("x"));
        assert_eq!(Formula::and(vec![p.clone()]).to_string(), "⋀(P(x))");
        assert_eq!(Formula::or(vec![p.clone()]).to_string(), "⋁(P(x))");
        // Two elements and up keep the familiar infix rendering.
        assert_eq!(
            Formula::and(vec![p.clone(), p.clone()]).to_string(),
            "(P(x) ∧ P(x))"
        );
        // Nested singletons stay distinguishable at every level.
        let nested = Formula::and(vec![Formula::or(vec![p])]);
        assert_eq!(nested.to_string(), "⋀(⋁(P(x)))");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Formula::truth().size(), 1);
        assert_eq!(sample().size(), 5); // exists, and, pred, eq, member
    }
}
