//! Terms of the calculus: constants, variables, and coordinate projections.
//!
//! The paper's terms under a type assignment α are (a) constant symbols (members
//! of `U`), (b) variable symbols `x` with `α(x)` defined, and (c) expressions `x.i`
//! where `α(x)` is a tuple type and `i` is a valid coordinate.  Because the formal
//! type definition forbids consecutive tuple constructors, terms of the form
//! `x.i.j` are never needed.

use itq_object::Atom;
use std::fmt;

/// A variable symbol.
///
/// Variables are identified by name; the typing layer associates each occurrence
/// with a [`Type`](itq_object::Type) via the enclosing quantifier or, for the
/// query's target variable, via the query itself.
pub type Var = String;

/// A term of the calculus.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A constant symbol — a member of the universal domain `U`.
    Const(Atom),
    /// A variable symbol.
    Var(Var),
    /// A coordinate projection `x.i` with 1-based coordinate `i`.
    Proj(Var, usize),
}

impl Term {
    /// A constant term.
    pub fn constant(a: Atom) -> Term {
        Term::Const(a)
    }

    /// A variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_string())
    }

    /// A projection term `x.i` (1-based, as in the paper).
    pub fn proj(name: &str, coordinate: usize) -> Term {
        Term::Proj(name.to_string(), coordinate)
    }

    /// The variable this term mentions, if any.
    pub fn variable(&self) -> Option<&Var> {
        match self {
            Term::Const(_) => None,
            Term::Var(v) => Some(v),
            Term::Proj(v, _) => Some(v),
        }
    }

    /// The constant this term mentions, if any.
    pub fn constant_atom(&self) -> Option<Atom> {
        match self {
            Term::Const(a) => Some(*a),
            _ => None,
        }
    }

    /// True if this term is or projects from the given variable.
    pub fn mentions(&self, var: &str) -> bool {
        self.variable().map(|v| v == var).unwrap_or(false)
    }

    /// Rename a variable occurrence (used by capture-avoiding prenex
    /// transformations).
    pub fn rename(&self, from: &str, to: &str) -> Term {
        match self {
            Term::Const(a) => Term::Const(*a),
            Term::Var(v) if v == from => Term::Var(to.to_string()),
            Term::Var(v) => Term::Var(v.clone()),
            Term::Proj(v, i) if v == from => Term::Proj(to.to_string(), *i),
            Term::Proj(v, i) => Term::Proj(v.clone(), *i),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(a) => write!(f, "{a}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Proj(v, i) => write!(f, "{v}.{i}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::str::FromStr for Term {
    type Err = String;

    /// Parse the `Display` form of a term: `a<id>` (constant), `x` (variable),
    /// or `x.i` (projection).
    ///
    /// An identifier of the shape `a<digits>` always denotes the constant with
    /// that raw id — variables must not use that spelling (the surface grammar
    /// reserves it).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        fn is_ident(s: &str) -> bool {
            let mut chars = s.chars();
            chars.next().is_some_and(|c| c.is_alphabetic() || c == '_')
                && chars.all(|c| c.is_alphanumeric() || c == '_' || c == '\'' || c == '#')
        }
        // Anything of the shape `a<digits>` is a constant — including ids too
        // large for an `Atom`, which must error rather than silently fall
        // through to the variable branch.
        if s.len() > 1 && s.starts_with('a') && s.as_bytes()[1..].iter().all(u8::is_ascii_digit) {
            return s.parse::<Atom>().map(Term::Const);
        }
        if let Some((name, coord)) = s.rsplit_once('.') {
            if is_ident(name) {
                let i: usize = coord
                    .parse()
                    .map_err(|_| format!("invalid coordinate in projection `{s}`"))?;
                return Ok(Term::Proj(name.to_string(), i));
            }
        }
        if is_ident(s) {
            return Ok(Term::Var(s.to_string()));
        }
        Err(format!(
            "expected a constant `a<id>`, a variable, or a projection `x.i`, found `{s}`"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let c = Term::constant(Atom(3));
        let v = Term::var("x");
        let p = Term::proj("y", 2);
        assert_eq!(c.constant_atom(), Some(Atom(3)));
        assert_eq!(c.variable(), None);
        assert_eq!(v.variable().map(String::as_str), Some("x"));
        assert_eq!(p.variable().map(String::as_str), Some("y"));
        assert_eq!(p.constant_atom(), None);
        assert!(v.mentions("x"));
        assert!(!v.mentions("y"));
        assert!(p.mentions("y"));
        assert!(!c.mentions("x"));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::proj("x", 1).to_string(), "x.1");
        assert_eq!(Term::constant(Atom(7)).to_string(), "a7");
    }

    #[test]
    fn from_str_round_trips_display() {
        let samples = [
            Term::constant(Atom(12)),
            Term::var("x"),
            Term::var("parent'"),
            Term::var("v#0"),
            Term::proj("y", 2),
        ];
        for t in samples {
            assert_eq!(t.to_string().parse::<Term>().unwrap(), t);
        }
        // `a<digits>` is reserved for constants — an id too large for an Atom
        // is an error, never a variable.
        assert_eq!("a3".parse::<Term>().unwrap(), Term::constant(Atom(3)));
        for bad in ["", "7x", "x.", "x.y", ".1", "x y", "a4294967296"] {
            assert!(bad.parse::<Term>().is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn renaming_only_touches_the_requested_variable() {
        let p = Term::proj("x", 2);
        assert_eq!(p.rename("x", "z"), Term::proj("z", 2));
        assert_eq!(p.rename("y", "z"), p);
        let v = Term::var("x");
        assert_eq!(v.rename("x", "w"), Term::var("w"));
        let c = Term::constant(Atom(0));
        assert_eq!(c.rename("x", "w"), c);
    }
}
