//! Intermediate types and the `CALC_{k,i}` classification (Section 3).
//!
//! For a query `Q : D → T`, a type `S` is an *intermediate type* of `Q` if some
//! variable of `Q`'s formula has type `S` and `S` is neither one of the schema
//! types of `D` nor the output type `T`.  The family `CALC_{k,i}` consists of the
//! calculus queries whose input and output types have set-height at most `k` and
//! whose intermediate types have set-height at most `i`.

use crate::query::Query;
use itq_object::Type;
use std::collections::BTreeSet;
use std::fmt;

/// A point `(k, i)` in the `CALC_{k,i}` lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CalcClass {
    /// Maximum set-height of input and output types.
    pub k: usize,
    /// Maximum set-height of intermediate types.
    pub i: usize,
}

impl CalcClass {
    /// The class `CALC_{k,i}`.
    pub fn new(k: usize, i: usize) -> Self {
        CalcClass { k, i }
    }

    /// The classical relational calculus `CALC_{0,0}`.
    pub fn relational() -> Self {
        CalcClass { k: 0, i: 0 }
    }

    /// The family equivalent to the second-order queries, `CALC_{0,1}`
    /// (Proposition 3.9).
    pub fn second_order() -> Self {
        CalcClass { k: 0, i: 1 }
    }

    /// True if every query in `self` is also syntactically in `other`
    /// (the containments `CALC_{k,i} ⊆ CALC_{k,i+1}` and
    /// `CALC_{k,i} ⊆ CALC_{k+1,i}` noted after the definition).
    pub fn contained_in(&self, other: &CalcClass) -> bool {
        self.k <= other.k && self.i <= other.i
    }
}

impl fmt::Display for CalcClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CALC_{{{},{}}}", self.k, self.i)
    }
}

/// The full classification of a query: its input/output types, its intermediate
/// types, and the minimal `CALC_{k,i}` family containing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryClassification {
    /// Types of the input schema and the output type.
    pub io_types: BTreeSet<Type>,
    /// Intermediate types: types of variables that are neither input nor output
    /// types.
    pub intermediate_types: BTreeSet<Type>,
    /// Types of quantified variables that coincide with input/output types (and
    /// are therefore *not* intermediate).
    pub non_intermediate_variable_types: BTreeSet<Type>,
    /// The minimal class `CALC_{k,i}` containing the query.
    pub minimal_class: CalcClass,
}

impl QueryClassification {
    /// True if the query is (syntactically) a member of `CALC_{k,i}`.
    pub fn is_in(&self, class: CalcClass) -> bool {
        self.minimal_class.contained_in(&class)
    }

    /// True if the query uses no intermediate types at all.
    pub fn has_no_intermediate_types(&self) -> bool {
        self.intermediate_types.is_empty()
    }

    /// True if the query maps flat databases to flat relations (the `CALC_{0,i}`
    /// families that are the paper's primary focus).
    pub fn is_relational_to_relational(&self) -> bool {
        self.minimal_class.k == 0
    }
}

/// Classify a query: compute its intermediate types and minimal `CALC_{k,i}`
/// membership.
pub fn classify(query: &Query) -> QueryClassification {
    let mut io_types: BTreeSet<Type> = BTreeSet::new();
    for (_, ty) in query.schema().iter() {
        io_types.insert(ty.clone());
    }
    io_types.insert(query.target_type().clone());

    let mut intermediate_types = BTreeSet::new();
    let mut non_intermediate = BTreeSet::new();
    for ty in query.body().quantified_types() {
        if io_types.contains(&ty) {
            non_intermediate.insert(ty);
        } else {
            intermediate_types.insert(ty);
        }
    }

    let k = io_types.iter().map(Type::set_height).max().unwrap_or(0);
    let i = intermediate_types
        .iter()
        .map(Type::set_height)
        .max()
        .unwrap_or(0);

    QueryClassification {
        io_types,
        intermediate_types,
        non_intermediate_variable_types: non_intermediate,
        minimal_class: CalcClass::new(k, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::term::Term;
    use itq_object::Schema;

    fn par_schema() -> Schema {
        Schema::single("PAR", Type::flat_tuple(2))
    }

    #[test]
    fn relational_query_without_intermediate_types() {
        // {t/[U,U] | PAR(t)} uses only the schema type.
        let q = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::pred("PAR", Term::var("t")),
            par_schema(),
        )
        .unwrap();
        let c = classify(&q);
        assert!(c.has_no_intermediate_types());
        assert_eq!(c.minimal_class, CalcClass::relational());
        assert!(c.is_relational_to_relational());
        assert!(c.is_in(CalcClass::second_order()));
    }

    #[test]
    fn relational_query_with_flat_intermediate_type() {
        // A ternary quantified variable over a binary schema: intermediate of
        // set-height 0, so the query stays in CALC_{0,0}.
        let q = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::exists(
                "w",
                Type::flat_tuple(3),
                Formula::and(vec![
                    Formula::pred("PAR", Term::var("t")),
                    Formula::eq(Term::proj("w", 1), Term::proj("t", 1)),
                ]),
            ),
            par_schema(),
        )
        .unwrap();
        let c = classify(&q);
        assert_eq!(c.intermediate_types.len(), 1);
        assert_eq!(c.minimal_class, CalcClass::new(0, 0));
    }

    #[test]
    fn transitive_closure_style_query_is_in_calc_0_1() {
        // {t/[U,U] | ∀x/{[U,U]} (… → t ∈ x)} has one intermediate type {[U,U]}.
        let q = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::forall(
                "x",
                Type::set(Type::flat_tuple(2)),
                Formula::member(Term::var("t"), Term::var("x")),
            ),
            par_schema(),
        )
        .unwrap();
        let c = classify(&q);
        assert_eq!(c.minimal_class, CalcClass::second_order());
        assert_eq!(
            c.intermediate_types,
            BTreeSet::from([Type::set(Type::flat_tuple(2))])
        );
        assert!(!c.is_in(CalcClass::relational()));
        assert!(c.is_in(CalcClass::new(0, 2)));
        assert!(c.is_in(CalcClass::new(3, 1)));
    }

    #[test]
    fn nested_database_types_raise_k() {
        // Input type {[U,U]} of set-height 1; quantified variable of set-height 2.
        let schema = Schema::single("S", Type::set(Type::flat_tuple(2)));
        let q = Query::new(
            "t",
            Type::set(Type::flat_tuple(2)),
            Formula::exists(
                "x",
                Type::set(Type::set(Type::flat_tuple(2))),
                Formula::member(Term::var("t"), Term::var("x")),
            ),
            schema,
        )
        .unwrap();
        let c = classify(&q);
        assert_eq!(c.minimal_class, CalcClass::new(1, 2));
        // The io type is not counted as intermediate even though it is quantified.
        let q2 = Query::new(
            "t",
            Type::set(Type::flat_tuple(2)),
            Formula::exists(
                "x",
                Type::set(Type::flat_tuple(2)),
                Formula::eq(Term::var("t"), Term::var("x")),
            ),
            Schema::single("S", Type::set(Type::flat_tuple(2))),
        )
        .unwrap();
        let c2 = classify(&q2);
        assert!(c2.has_no_intermediate_types());
        assert_eq!(c2.minimal_class, CalcClass::new(1, 0));
        assert!(!c2.non_intermediate_variable_types.is_empty());
    }

    #[test]
    fn class_lattice_and_display() {
        assert!(CalcClass::new(0, 1).contained_in(&CalcClass::new(0, 2)));
        assert!(CalcClass::new(0, 1).contained_in(&CalcClass::new(1, 1)));
        assert!(!CalcClass::new(1, 1).contained_in(&CalcClass::new(0, 2)));
        assert_eq!(CalcClass::new(0, 3).to_string(), "CALC_{0,3}");
        assert_eq!(CalcClass::relational(), CalcClass::new(0, 0));
        assert_eq!(CalcClass::second_order(), CalcClass::new(0, 1));
    }
}
