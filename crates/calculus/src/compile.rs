//! Compilation of calculus queries into a slot-based executable form.
//!
//! The tree-walking evaluator in [`crate::eval`] resolves every variable
//! through a `BTreeMap<String, Value>` and deep-clones set values it only
//! wants to compare; worse, every entry into a quantifier re-enumerates the
//! constructive domain `cons_X(T)` from scratch, so a `∀x ∃y` over a size-`N`
//! domain performs `~N²` deep [`Value`] constructions.
//! This module is the static half of the fix: [`compile`] lowers a validated
//! [`Query`] once — at prepare time — into a [`CompiledQuery`] whose
//!
//! * variables are **slots** (de-Bruijn-style indices into a flat
//!   environment of [`ValueId`]s — no string keys, no shadow-save/restore:
//!   every occurrence is resolved to its binder statically);
//! * constants and predicate symbols are pre-resolved handles into dense
//!   tables (relations are interned to id-sets on first use, making `P(t)`
//!   an O(1) hash probe);
//! * quantifiers carry their domain type as a descriptor looked up in a
//!   per-execution [`DomainCache`], so each `cons_X(T)` is materialised
//!   exactly once per execution and shared by every enclosing iteration.
//!
//! The dynamic half, [`CompiledQuery::eval_with_extra`], mirrors the tree
//! walker *bit for bit*: same enumeration (rank) order, same step counting,
//! same short-circuit decisions, and same budget-error classification — the
//! property suite pins `eval_compiled == evaluate` on answers, shared
//! statistics, and errors across all three semantics.

use crate::error::CalcError;
use crate::eval::{EvalConfig, EvalStats, Evaluable, Evaluation};
use crate::formula::Formula;
use crate::query::Query;
use crate::term::{Term, Var};
use itq_object::cons::cons_cardinality;
use itq_object::govern::POLL_MASK;
use itq_object::pool::{partition_ranges, run_partitions};
use itq_object::store::{DomainCache, DomainHandle, ValueId, ValueStore};
use itq_object::{Atom, Database, Instance, Interrupt, PredName, Type, Value};
use itq_trace::Span;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// A compiled term: constant/variable references resolved to dense handles.
///
/// Variable names are preserved alongside their slot purely for diagnostics —
/// the error a compiled evaluation reports must classify identically to the
/// tree walker's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTerm {
    /// A constant, as an index into the query's constant table.
    Const(u32),
    /// A variable, as a slot index into the flat environment.
    Slot {
        /// Environment slot of the binder (0 is the target variable).
        slot: u32,
        /// Source-level name, for error parity with the tree walker.
        var: Var,
    },
    /// A coordinate projection `x.i` (1-based, as in the paper).
    Proj {
        /// Environment slot of the binder.
        slot: u32,
        /// The projected coordinate.
        coordinate: usize,
        /// Source-level name, for error parity with the tree walker.
        var: Var,
    },
}

/// A compiled formula: the sentential structure of the source
/// [`Formula`] with slot-resolved terms, pre-resolved predicate handles, and
/// per-quantifier domain descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CFormula {
    /// `t1 ≈ t2` — an id comparison at runtime.
    Eq(CTerm, CTerm),
    /// `t1 ∈ t2` — an id-set probe at runtime.
    Member(CTerm, CTerm),
    /// `P(t)` with `P` as an index into the query's predicate table.
    Pred(u32, CTerm),
    /// `¬φ`.
    Not(Box<CFormula>),
    /// `φ1 ∧ … ∧ φn` (true when empty).
    And(Vec<CFormula>),
    /// `φ1 ∨ … ∨ φn` (false when empty).
    Or(Vec<CFormula>),
    /// `φ1 → φ2`.
    Implies(Box<CFormula>, Box<CFormula>),
    /// `φ1 ↔ φ2`.
    Iff(Box<CFormula>, Box<CFormula>),
    /// `(∃x/T φ)` with `x` resolved to a slot and `T` to an index into the
    /// query's [domain-type table](CompiledQuery::domain_types) — resolved to
    /// a dense [`DomainCache`] handle at the start of each execution.
    Exists(u32, u32, Box<CFormula>),
    /// `(∀x/T φ)`.
    Forall(u32, u32, Box<CFormula>),
}

/// A query lowered for the slot-based evaluator: the executable artifact
/// cached by `Engine::prepare` and shared by every execution (and, under the
/// invention semantics, by every invention level).
///
/// Produced by [`compile`]; executed by [`CompiledQuery::eval_full`] /
/// [`CompiledQuery::eval_with_extra`], which return the same
/// [`Evaluation`] shape as the tree walker.
///
/// ```
/// use itq_calculus::compile::compile;
/// use itq_calculus::eval::EvalConfig;
/// use itq_calculus::{Formula, Query, Term};
/// use itq_object::{Atom, Database, Instance, Schema, Type};
///
/// let q = Query::new(
///     "t",
///     Type::Atomic,
///     Formula::pred("R", Term::var("t")),
///     Schema::single("R", Type::Atomic),
/// )
/// .unwrap();
/// let compiled = compile(&q).unwrap();
/// assert_eq!(compiled.slot_count(), 1); // just the target variable
///
/// let db = Database::single("R", Instance::from_atoms(vec![Atom(7)]));
/// let fast = compiled.eval_full(&db, &EvalConfig::default()).unwrap();
/// let slow = q.eval_full(&db, &EvalConfig::default()).unwrap();
/// assert_eq!(fast.result, slow.result);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    target_type: Type,
    slot_count: usize,
    consts: Vec<Atom>,
    preds: Vec<PredName>,
    constants: BTreeSet<Atom>,
    /// Every domain a quantifier (or the candidate enumeration) draws from,
    /// deduplicated; entry 0 is always the target type.
    domain_types: Vec<Type>,
    body: CFormula,
}

impl CompiledQuery {
    /// The output type `T` of the source query.
    pub fn target_type(&self) -> &Type {
        &self.target_type
    }

    /// Number of environment slots (1 for the target plus the deepest
    /// quantifier nesting; sibling quantifiers at the same depth share a
    /// slot).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The predicate symbols of the query, in handle order.
    pub fn predicates(&self) -> &[PredName] {
        &self.preds
    }

    /// The constants occurring in the query (`adom(Q)`).
    pub fn constants(&self) -> &BTreeSet<Atom> {
        &self.constants
    }

    /// The deduplicated table of quantifier/candidate domain types; entry 0
    /// is the target type.  Quantifier nodes refer to domains by index into
    /// this table, and each execution resolves the table to dense
    /// [`DomainCache`] handles once, up front.
    pub fn domain_types(&self) -> &[Type] {
        &self.domain_types
    }

    /// The compiled body.
    pub fn body(&self) -> &CFormula {
        &self.body
    }

    /// Evaluate under the limited interpretation (`Y = ∅`).
    pub fn eval_full(&self, db: &Database, config: &EvalConfig) -> Result<Evaluation, CalcError> {
        Evaluable::eval_with_extra(self, db, &[], config)
    }

    /// [`Evaluable::eval_with_extra`] with quantifier-nest tracing: the
    /// returned [`Span`] carries the whole-evaluation counters as fields and
    /// one child span per environment slot recording how many values that
    /// slot's quantifier nest drew (sibling quantifiers share a slot, so the
    /// per-slot counts are per nesting depth), plus the domain-cache
    /// activity.  The evaluation itself — answers, statistics, errors — is
    /// byte-identical to the untraced path: the tracer is a monomorphized
    /// type parameter whose untraced instantiation compiles to nothing.
    pub fn eval_traced(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
    ) -> Result<(Evaluation, Span), CalcError> {
        self.eval_traced_governed(db, extra, config, Interrupt::disarmed())
    }

    /// [`CompiledQuery::eval_traced`] under a resource governor (see
    /// [`Evaluable::eval_governed`]); the trace remains byte-identical to the
    /// ungoverned one whenever the interrupt never trips.
    pub fn eval_traced_governed(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
    ) -> Result<(Evaluation, Span), CalcError> {
        let start = Instant::now();
        let (evaluation, tracer) = self.eval_inner(
            db,
            extra,
            config,
            interrupt,
            SlotDraws {
                draws: vec![0; self.slot_count],
            },
        )?;
        let stats = &evaluation.stats;
        let mut span = Span::new("compiled-eval");
        span.push_field("candidates_checked", stats.candidates_checked);
        span.push_field("quantifier_values", stats.quantifier_values);
        span.push_field("steps", stats.steps);
        span.push_field("max_domain_seen", stats.max_domain_seen);
        span.push_field("domain_cache_hits", stats.domain_cache_hits);
        span.push_field("domain_cache_misses", stats.domain_cache_misses);
        span.push_field("interned_values", stats.interned_values);
        for (slot, &draws) in tracer.draws.iter().enumerate().skip(1) {
            let mut child = Span::new(format!("quantifier slot {slot}"));
            child.push_field("draws", draws);
            span.push_child(child);
        }
        span.wall_micros = start.elapsed().as_micros() as u64;
        Ok((evaluation, span))
    }

    fn eval_inner<T: QuantTracer>(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
        tracer: T,
    ) -> Result<(Evaluation, T), CalcError> {
        // Poll once before any work so a deadline of 0 ms (or a pre-set
        // cancel flag) trips even on queries that would finish instantly —
        // mirrored by the tree walker so both backends always poll at least
        // once per execution.
        interrupt.check(0)?;
        let mut atom_set = Evaluable::evaluation_domain(self, db);
        atom_set.extend(extra.iter().copied());
        let atoms: Vec<Atom> = atom_set.into_iter().collect();

        let target_card = cons_cardinality(&self.target_type, atoms.len());
        if !target_card.fits_within(config.max_candidates) {
            return Err(CalcError::Budget {
                what: format!(
                    "candidate domain cons_X({}) of size {target_card}",
                    self.target_type
                ),
                limit: config.max_candidates,
            });
        }

        let mut exec = Exec {
            db,
            config,
            compiled: self,
            store: ValueStore::new(),
            domains: DomainCache::new(atoms),
            domain_handles: Vec::with_capacity(self.domain_types.len()),
            domain_sizes: vec![None; self.domain_types.len()],
            env: vec![None; self.slot_count],
            const_ids: Vec::with_capacity(self.consts.len()),
            relations: vec![None; self.preds.len()],
            stats: EvalStats::default(),
            interrupt,
            tracer,
        };
        exec.domain_handles = self
            .domain_types
            .iter()
            .map(|ty| exec.domains.handle(ty))
            .collect();
        for &atom in &self.consts {
            let id = exec.store.intern_atom(atom);
            exec.const_ids.push(id);
        }

        let total_candidates = target_card.saturating_u64();
        let candidate_handle = exec.domain_handles[0];
        let mut satisfied: Vec<ValueId> = Vec::new();
        for rank in 0..total_candidates {
            exec.stats.candidates_checked += 1;
            let candidate = exec
                .domains
                .nth(candidate_handle, rank as u128, &mut exec.store)?;
            exec.env[0] = Some(candidate);
            if exec.satisfies(&self.body)? {
                satisfied.push(candidate);
            }
        }

        let result = Instance::from_values(satisfied.iter().map(|&id| exec.store.resolve(id)));
        exec.stats.domain_cache_hits = exec.domains.hits();
        exec.stats.domain_cache_misses = exec.domains.misses();
        exec.stats.interned_values = exec.store.len() as u64;
        Ok((
            Evaluation {
                result,
                stats: exec.stats,
            },
            exec.tracer,
        ))
    }

    /// Partitioned evaluation: split the top-level candidate loop into
    /// contiguous rank chunks and evaluate the chunks on a scoped worker pool,
    /// one [`ValueStore`]/[`DomainCache`] overlay per worker over a shared
    /// frozen base.
    ///
    /// The coordinator interns the query constants and pre-materialises the
    /// *entire* candidate domain into the base before freezing it — without
    /// the prefill, the worker owning the last rank chunk would privately
    /// re-materialise every earlier rank (lazy domains extend sequentially)
    /// and the partitioning would not scale.
    ///
    /// Determinism contract, pinned by `tests/parallel_equivalence.rs`:
    ///
    /// * **answers** are byte-identical to the sequential evaluator for every
    ///   worker count — candidates are a pure function of their rank, and the
    ///   merged [`Instance`] canonicalises structurally;
    /// * **deterministic counters** (`steps`, `quantifier_values`,
    ///   `candidates_checked`, `max_domain_seen`) equal the sequential run's —
    ///   per-candidate work is independent, so partition sums reproduce the
    ///   sequential totals exactly;
    /// * **errors** are reconstructed in partition (rank) order with a
    ///   cumulative step counter, so logical budget errors surface with the
    ///   same classification and message the sequential run would have
    ///   produced, no matter which worker tripped first in wall-clock time.
    ///   Physical [`ResourceError`](itq_object::ResourceError) trips
    ///   (cancellation, deadlines, memory ceilings) are inherently racy in
    ///   *when* they fire, but their messages are deterministic, so the
    ///   surfaced error is byte-identical there too.
    ///
    /// The cache counters (`domain_cache_hits`/`misses`, `interned_values`)
    /// keep their meaning but not their exact values at `workers > 1`:
    /// per-worker overlays may duplicate inner-quantifier materialisation the
    /// sequential memo would have shared.
    pub fn eval_governed_parallel(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
        workers: usize,
    ) -> Result<ParallelEvaluation, CalcError> {
        // Entry poll, mirroring the sequential evaluator: a 0 ms deadline or
        // a pre-raised cancel flag trips before any work.
        interrupt.check(0)?;
        let mut atom_set = Evaluable::evaluation_domain(self, db);
        atom_set.extend(extra.iter().copied());
        let atoms: Vec<Atom> = atom_set.into_iter().collect();

        let target_card = cons_cardinality(&self.target_type, atoms.len());
        if !target_card.fits_within(config.max_candidates) {
            return Err(CalcError::Budget {
                what: format!(
                    "candidate domain cons_X({}) of size {target_card}",
                    self.target_type
                ),
                limit: config.max_candidates,
            });
        }
        let total = target_card.saturating_u64();

        // Coordinator phase: build the shared base — constants interned,
        // every candidate rank materialised — then freeze it for the workers.
        let mut store = ValueStore::new();
        let mut domains = DomainCache::new(atoms);
        let mut domain_handles = Vec::with_capacity(self.domain_types.len());
        for ty in &self.domain_types {
            domain_handles.push(domains.handle(ty));
        }
        let mut const_ids = Vec::with_capacity(self.consts.len());
        for &atom in &self.consts {
            const_ids.push(store.intern_atom(atom));
        }
        let candidate_handle = domain_handles[0];
        for rank in 0..total {
            domains.nth(candidate_handle, rank as u128, &mut store)?;
            if rank & POLL_MASK == POLL_MASK {
                interrupt.check(store.approx_bytes() + domains.approx_bytes())?;
            }
        }
        let base_stats = EvalStats {
            domain_cache_hits: domains.hits(),
            domain_cache_misses: domains.misses(),
            interned_values: store.len() as u64,
            ..EvalStats::default()
        };
        let base_len = store.len() as u64;
        let frozen_store = store.freeze();
        let frozen_domains = domains.freeze();

        let ranges = partition_ranges(total as usize, workers.max(1));
        let outcomes = run_partitions(ranges, |_, (start, end)| {
            let begun = Instant::now();
            let mut exec = Exec {
                db,
                config,
                compiled: self,
                store: ValueStore::overlay(Arc::clone(&frozen_store)),
                domains: DomainCache::overlay(Arc::clone(&frozen_domains)),
                domain_handles: domain_handles.clone(),
                domain_sizes: vec![None; self.domain_types.len()],
                env: vec![None; self.slot_count],
                const_ids: const_ids.clone(),
                relations: vec![None; self.preds.len()],
                stats: EvalStats::default(),
                interrupt,
                tracer: NoTrace,
            };
            let mut satisfied: Vec<ValueId> = Vec::new();
            let mut error = None;
            for rank in start..end {
                exec.stats.candidates_checked += 1;
                let candidate =
                    match exec
                        .domains
                        .nth(candidate_handle, rank as u128, &mut exec.store)
                    {
                        Ok(id) => id,
                        Err(e) => {
                            error = Some(CalcError::from(e));
                            break;
                        }
                    };
                exec.env[0] = Some(candidate);
                match exec.satisfies(&self.body) {
                    Ok(true) => satisfied.push(candidate),
                    Ok(false) => {}
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            exec.stats.domain_cache_hits = exec.domains.hits();
            exec.stats.domain_cache_misses = exec.domains.misses();
            exec.stats.interned_values = (exec.store.len() as u64).saturating_sub(base_len);
            PartitionOutcome {
                ranks: (start as u64, end as u64),
                satisfied: satisfied.iter().map(|&id| exec.store.resolve(id)).collect(),
                stats: exec.stats,
                error,
                wall_micros: begun.elapsed().as_micros() as u64,
            }
        });

        // Deterministic error reconstruction: replay the partitions in rank
        // order with a cumulative step counter.  The sequential run errors
        // with the step-budget message at the first candidate where the
        // global counter crosses `max_steps`; a partition whose own error
        // lies past that crossing therefore reports the budget error instead
        // — its candidate would never have been reached sequentially.
        // Physical resource trips (whose messages carry no counters) are
        // surfaced as-is: the sequential run, being slower, would have
        // observed the same condition.
        let step_budget = || CalcError::Budget {
            what: "formula evaluation steps".to_string(),
            limit: config.max_steps,
        };
        let mut cum_steps: u64 = 0;
        for outcome in &outcomes {
            let crossed = cum_steps.saturating_add(outcome.stats.steps) > config.max_steps;
            match &outcome.error {
                Some(CalcError::Resource(e)) => return Err(CalcError::Resource(e.clone())),
                Some(e) => {
                    return Err(if crossed { step_budget() } else { e.clone() });
                }
                None if crossed => return Err(step_budget()),
                None => cum_steps = cum_steps.saturating_add(outcome.stats.steps),
            }
        }

        let mut stats = base_stats;
        let mut partitions = Vec::with_capacity(outcomes.len());
        let mut values: Vec<Value> = Vec::new();
        for outcome in outcomes {
            stats.merge(&outcome.stats);
            values.extend(outcome.satisfied);
            partitions.push(PartitionStats {
                ranks: outcome.ranks,
                stats: outcome.stats,
                wall_micros: outcome.wall_micros,
            });
        }
        Ok(ParallelEvaluation {
            evaluation: Evaluation {
                result: Instance::from_values(values),
                stats,
            },
            partitions,
        })
    }

    /// [`CompiledQuery::eval_governed_parallel`] with per-partition tracing:
    /// the returned [`Span`] carries the merged whole-evaluation counters
    /// plus one child span per partition (rank range, local counters, worker
    /// wall-clock).  The partition children replace the sequential trace's
    /// per-slot quantifier children — under partitioning the interesting
    /// breakdown is *where the work went*, not which nesting depth drew it.
    pub fn eval_traced_governed_parallel(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
        workers: usize,
    ) -> Result<(Evaluation, Span), CalcError> {
        let start = Instant::now();
        let parallel = self.eval_governed_parallel(db, extra, config, interrupt, workers)?;
        let stats = &parallel.evaluation.stats;
        let mut span = Span::new("compiled-eval");
        span.push_field("candidates_checked", stats.candidates_checked);
        span.push_field("quantifier_values", stats.quantifier_values);
        span.push_field("steps", stats.steps);
        span.push_field("max_domain_seen", stats.max_domain_seen);
        span.push_field("domain_cache_hits", stats.domain_cache_hits);
        span.push_field("domain_cache_misses", stats.domain_cache_misses);
        span.push_field("interned_values", stats.interned_values);
        span.push_field("partitions", parallel.partitions.len() as u64);
        for (i, partition) in parallel.partitions.iter().enumerate() {
            let mut child = Span::new(format!("partition {i}"));
            child.push_field("rank_start", partition.ranks.0);
            child.push_field("rank_end", partition.ranks.1);
            child.push_field("candidates_checked", partition.stats.candidates_checked);
            child.push_field("steps", partition.stats.steps);
            child.push_field("quantifier_values", partition.stats.quantifier_values);
            child.wall_micros = partition.wall_micros;
            span.push_child(child);
        }
        span.wall_micros = start.elapsed().as_micros() as u64;
        Ok((parallel.evaluation, span))
    }
}

/// The per-partition slice of a partitioned evaluation: the candidate-rank
/// range the partition owned, its local counters (steps and draws counted
/// from zero), and its worker's wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// Half-open candidate-rank range `[start, end)` this partition evaluated.
    pub ranks: (u64, u64),
    /// The partition's local counters.
    pub stats: EvalStats,
    /// Wall-clock this partition's worker spent, in microseconds.  Partitions
    /// overlap in time, so these must **not** be summed into an execution
    /// wall-clock — the slowest partition bounds the parallel span.
    pub wall_micros: u64,
}

/// A partitioned evaluation: the merged [`Evaluation`] (byte-identical
/// answers, deterministic shared counters) plus the per-partition breakdown
/// used by stats and trace reporting.
#[derive(Debug, Clone)]
pub struct ParallelEvaluation {
    /// The merged evaluation, shaped exactly like a sequential one.
    pub evaluation: Evaluation,
    /// Per-partition statistics, in partition (rank) order.
    pub partitions: Vec<PartitionStats>,
}

/// What one worker hands back to the coordinator.
struct PartitionOutcome {
    ranks: (u64, u64),
    /// Satisfied candidates resolved to structural [`Value`]s by the worker —
    /// worker-local [`ValueId`]s are meaningless outside their overlay.
    satisfied: Vec<Value>,
    stats: EvalStats,
    error: Option<CalcError>,
    wall_micros: u64,
}

/// A [`CompiledQuery`] bound to a worker count, standing wherever an
/// [`Evaluable`] backend is expected: the invention-semantics drivers take
/// `&dyn Evaluable`, so wrapping the compiled query in `ParallelCompiled`
/// parallelises every invention level's candidate loop without the drivers
/// knowing about partitioning.
#[derive(Debug, Clone, Copy)]
pub struct ParallelCompiled<'a> {
    compiled: &'a CompiledQuery,
    workers: usize,
}

impl<'a> ParallelCompiled<'a> {
    /// Bind `compiled` to a worker count (`workers <= 1` degenerates to an
    /// inline single partition — the sequential ablation spawns no threads).
    pub fn new(compiled: &'a CompiledQuery, workers: usize) -> ParallelCompiled<'a> {
        ParallelCompiled { compiled, workers }
    }
}

impl Evaluable for ParallelCompiled<'_> {
    fn eval_with_extra(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
    ) -> Result<Evaluation, CalcError> {
        self.compiled
            .eval_governed_parallel(db, extra, config, Interrupt::disarmed(), self.workers)
            .map(|parallel| parallel.evaluation)
    }

    fn eval_governed(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
    ) -> Result<Evaluation, CalcError> {
        self.compiled
            .eval_governed_parallel(db, extra, config, interrupt, self.workers)
            .map(|parallel| parallel.evaluation)
    }

    fn evaluation_domain(&self, db: &Database) -> BTreeSet<Atom> {
        Evaluable::evaluation_domain(self.compiled, db)
    }
}

impl Evaluable for CompiledQuery {
    fn eval_with_extra(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
    ) -> Result<Evaluation, CalcError> {
        self.eval_inner(db, extra, config, Interrupt::disarmed(), NoTrace)
            .map(|(evaluation, NoTrace)| evaluation)
    }

    fn eval_governed(
        &self,
        db: &Database,
        extra: &[Atom],
        config: &EvalConfig,
        interrupt: &Interrupt,
    ) -> Result<Evaluation, CalcError> {
        self.eval_inner(db, extra, config, interrupt, NoTrace)
            .map(|(evaluation, NoTrace)| evaluation)
    }

    fn evaluation_domain(&self, db: &Database) -> BTreeSet<Atom> {
        let mut atoms = db.active_domain();
        atoms.extend(self.constants.iter().copied());
        atoms
    }
}

/// Compile a validated [`Query`] into its slot-based executable form.
///
/// This is static work in the sense of the prepare/execute split: it walks
/// the body once, assigns every binder a depth-indexed slot, resolves every
/// variable occurrence to its binder's slot, and collects the constant and
/// predicate tables.  An unbound variable — impossible for a query that
/// passed [`Query::new`] validation — is reported as
/// [`CalcError::UnboundVariable`] at compile time rather than at runtime.
pub fn compile(query: &Query) -> Result<CompiledQuery, CalcError> {
    let mut lowering = Lowering {
        scope: vec![(query.target().to_string(), 0)],
        consts: Vec::new(),
        preds: Vec::new(),
        // Entry 0 is reserved for the target type (the candidate domain).
        domain_types: vec![query.target_type().clone()],
        slot_count: 1,
    };
    let body = lowering.formula(query.body())?;
    Ok(CompiledQuery {
        target_type: query.target_type().clone(),
        slot_count: lowering.slot_count,
        consts: lowering.consts,
        preds: lowering.preds,
        constants: query.constants(),
        domain_types: lowering.domain_types,
        body,
    })
}

/// Compile-time state: the binder stack and the constant/predicate tables.
struct Lowering {
    /// Innermost binder last; lookup walks backwards so shadowing resolves to
    /// the nearest enclosing binder, exactly like the tree walker's map.
    scope: Vec<(Var, u32)>,
    consts: Vec<Atom>,
    preds: Vec<PredName>,
    domain_types: Vec<Type>,
    slot_count: usize,
}

impl Lowering {
    fn slot_of(&self, var: &str) -> Result<u32, CalcError> {
        self.scope
            .iter()
            .rev()
            .find(|(name, _)| name == var)
            .map(|&(_, slot)| slot)
            .ok_or_else(|| CalcError::UnboundVariable {
                var: var.to_string(),
            })
    }

    fn const_handle(&mut self, atom: Atom) -> u32 {
        match self.consts.iter().position(|&a| a == atom) {
            Some(i) => i as u32,
            None => {
                self.consts.push(atom);
                (self.consts.len() - 1) as u32
            }
        }
    }

    fn pred_handle(&mut self, name: &str) -> u32 {
        match self.preds.iter().position(|p| p == name) {
            Some(i) => i as u32,
            None => {
                self.preds.push(name.to_string());
                (self.preds.len() - 1) as u32
            }
        }
    }

    fn domain_index(&mut self, ty: &Type) -> u32 {
        match self.domain_types.iter().position(|t| t == ty) {
            Some(i) => i as u32,
            None => {
                self.domain_types.push(ty.clone());
                (self.domain_types.len() - 1) as u32
            }
        }
    }

    fn term(&mut self, term: &Term) -> Result<CTerm, CalcError> {
        match term {
            Term::Const(a) => Ok(CTerm::Const(self.const_handle(*a))),
            Term::Var(v) => Ok(CTerm::Slot {
                slot: self.slot_of(v)?,
                var: v.clone(),
            }),
            Term::Proj(v, i) => Ok(CTerm::Proj {
                slot: self.slot_of(v)?,
                coordinate: *i,
                var: v.clone(),
            }),
        }
    }

    fn quantifier(&mut self, var: &Var, body: &Formula) -> Result<(u32, Box<CFormula>), CalcError> {
        // Depth-indexed slot reuse: sibling quantifiers occupy the same slot,
        // so the environment stays as small as the deepest nesting.
        let slot = self.scope.len() as u32;
        self.slot_count = self.slot_count.max(slot as usize + 1);
        self.scope.push((var.clone(), slot));
        let lowered = self.formula(body);
        self.scope.pop();
        Ok((slot, Box::new(lowered?)))
    }

    fn formula(&mut self, formula: &Formula) -> Result<CFormula, CalcError> {
        Ok(match formula {
            Formula::Eq(t1, t2) => CFormula::Eq(self.term(t1)?, self.term(t2)?),
            Formula::Member(t1, t2) => CFormula::Member(self.term(t1)?, self.term(t2)?),
            Formula::Pred(name, t) => CFormula::Pred(self.pred_handle(name), self.term(t)?),
            Formula::Not(f) => CFormula::Not(Box::new(self.formula(f)?)),
            Formula::And(fs) => CFormula::And(
                fs.iter()
                    .map(|f| self.formula(f))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Or(fs) => CFormula::Or(
                fs.iter()
                    .map(|f| self.formula(f))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Implies(f1, f2) => {
                CFormula::Implies(Box::new(self.formula(f1)?), Box::new(self.formula(f2)?))
            }
            Formula::Iff(f1, f2) => {
                CFormula::Iff(Box::new(self.formula(f1)?), Box::new(self.formula(f2)?))
            }
            Formula::Exists(v, ty, f) => {
                let dom = self.domain_index(ty);
                let (slot, body) = self.quantifier(v, f)?;
                CFormula::Exists(slot, dom, body)
            }
            Formula::Forall(v, ty, f) => {
                let dom = self.domain_index(ty);
                let (slot, body) = self.quantifier(v, f)?;
                CFormula::Forall(slot, dom, body)
            }
        })
    }
}

/// A hook called once per quantifier draw, resolved statically so the
/// untraced instantiation ([`NoTrace`]) monomorphizes to nothing — the
/// compiled evaluator's hot loops stay byte-for-byte on their untraced path.
trait QuantTracer {
    fn draw(&mut self, slot: u32);
}

/// The untraced instantiation: every hook is an inlined no-op.
struct NoTrace;

impl QuantTracer for NoTrace {
    #[inline(always)]
    fn draw(&mut self, _slot: u32) {}
}

/// The traced instantiation: per-slot draw counters (slot 0, the candidate
/// loop, is never drawn by a quantifier and stays at zero).
struct SlotDraws {
    draws: Vec<u64>,
}

impl QuantTracer for SlotDraws {
    #[inline]
    fn draw(&mut self, slot: u32) {
        self.draws[slot as usize] += 1;
    }
}

/// Execution-time state of one compiled evaluation: the interner, the domain
/// memo, the flat environment, and the resolved handle tables.
struct Exec<'a, T: QuantTracer> {
    db: &'a Database,
    config: &'a EvalConfig,
    compiled: &'a CompiledQuery,
    store: ValueStore,
    domains: DomainCache,
    /// The query's domain-type table resolved to dense cache handles, so the
    /// quantifier loops never hash a `Type`.
    domain_handles: Vec<DomainHandle>,
    /// Per-domain budget verdict (size or budget error), resolved on first
    /// entry: the atom set is fixed for the whole execution, so the
    /// `cons_cardinality` walk and the budget comparison are execution
    /// invariants that must not be repeated once per enclosing quantifier
    /// draw.
    domain_sizes: Vec<Option<Result<u64, CalcError>>>,
    /// Flat environment indexed by slot; `None` only before first binding
    /// (a compiled query never reads an unwritten slot — enforced here with
    /// the same error the tree walker would raise).
    env: Vec<Option<ValueId>>,
    const_ids: Vec<ValueId>,
    /// Per-predicate interned relation, resolved lazily on first use so a
    /// missing relation errors at the same evaluation point as the tree
    /// walker (which looks relations up per `P(t)` node).
    relations: Vec<Option<HashSet<ValueId>>>,
    stats: EvalStats,
    /// The execution's resource governor.  Polled every [`POLL_MASK`]+1 steps
    /// — the same cadence as the tree walker, whose step counter this
    /// evaluator replicates bit for bit, so the two backends' poll points
    /// coincide.  Memory polls report the interner's and domain memo's
    /// deterministic byte estimates.
    interrupt: &'a Interrupt,
    tracer: T,
}

impl<T: QuantTracer> Exec<'_, T> {
    fn bump(&mut self) -> Result<(), CalcError> {
        self.stats.steps += 1;
        if self.stats.steps & POLL_MASK == 0 {
            self.interrupt
                .check(self.store.approx_bytes() + self.domains.approx_bytes())?;
        }
        if self.stats.steps > self.config.max_steps {
            return Err(CalcError::Budget {
                what: "formula evaluation steps".to_string(),
                limit: self.config.max_steps,
            });
        }
        Ok(())
    }

    fn term(&self, term: &CTerm) -> Result<ValueId, CalcError> {
        match term {
            CTerm::Const(i) => Ok(self.const_ids[*i as usize]),
            CTerm::Slot { slot, var } => self.env[*slot as usize]
                .ok_or_else(|| CalcError::UnboundVariable { var: var.clone() }),
            CTerm::Proj {
                slot,
                coordinate,
                var,
            } => {
                let id = self.env[*slot as usize]
                    .ok_or_else(|| CalcError::UnboundVariable { var: var.clone() })?;
                self.store
                    .project(id, *coordinate)
                    .ok_or_else(|| CalcError::BadProjection {
                        var: var.clone(),
                        coordinate: *coordinate,
                        ty: format!("value {}", self.store.resolve(id)),
                    })
            }
        }
    }

    /// Budget-check a quantifier domain and return its size; the check and
    /// the counters replicate the tree walker's `quantifier_domain` exactly,
    /// but the verdict (an execution invariant for the fixed atom set) is
    /// computed once per domain and replayed on every further entry.  The
    /// values themselves are drawn rank by rank from the [`DomainCache`]
    /// memo, so a short-circuited search never materialises the ranks it
    /// skips and a repeated entry replays the cached prefix.
    fn quantifier_domain(&mut self, dom: u32) -> Result<u64, CalcError> {
        let i = dom as usize;
        if self.domain_sizes[i].is_none() {
            let ty = &self.compiled.domain_types[i];
            let n_atoms = self.domains.atoms().len();
            let card = cons_cardinality(ty, n_atoms);
            let verdict = if card.fits_within(self.config.max_quantifier_domain) {
                Ok(card.saturating_u64())
            } else {
                Err(CalcError::Budget {
                    what: format!(
                        "quantifier domain cons_X({ty}) of size {card} over {n_atoms} atoms"
                    ),
                    limit: self.config.max_quantifier_domain,
                })
            };
            self.domain_sizes[i] = Some(verdict);
        }
        match self.domain_sizes[i].as_ref().expect("resolved above") {
            Ok(size) => {
                let size = *size;
                if size > self.stats.max_domain_seen {
                    self.stats.max_domain_seen = size;
                }
                Ok(size)
            }
            Err(e) => Err(e.clone()),
        }
    }

    fn relation_contains(&mut self, pred: u32, value: ValueId) -> Result<bool, CalcError> {
        let i = pred as usize;
        if self.relations[i].is_none() {
            let name = &self.compiled.preds[i];
            let relation = self
                .db
                .relation(name)
                .ok_or_else(|| CalcError::UnknownPredicate { name: name.clone() })?;
            let ids: HashSet<ValueId> = relation.iter().map(|v| self.store.intern(v)).collect();
            self.relations[i] = Some(ids);
        }
        Ok(self.relations[i]
            .as_ref()
            .expect("resolved above")
            .contains(&value))
    }

    fn satisfies(&mut self, formula: &CFormula) -> Result<bool, CalcError> {
        self.bump()?;
        match formula {
            CFormula::Eq(t1, t2) => Ok(self.term(t1)? == self.term(t2)?),
            CFormula::Member(t1, t2) => {
                let elem = self.term(t1)?;
                let container = self.term(t2)?;
                Ok(self.store.set_contains(container, elem))
            }
            CFormula::Pred(pred, t) => {
                let value = self.term(t)?;
                self.relation_contains(*pred, value)
            }
            CFormula::Not(f) => Ok(!self.satisfies(f)?),
            CFormula::And(fs) => {
                let mut all = true;
                for f in fs {
                    let holds = self.satisfies(f)?;
                    if !holds {
                        all = false;
                        if self.config.short_circuit {
                            return Ok(false);
                        }
                    }
                }
                Ok(all)
            }
            CFormula::Or(fs) => {
                let mut any = false;
                for f in fs {
                    let holds = self.satisfies(f)?;
                    if holds {
                        any = true;
                        if self.config.short_circuit {
                            return Ok(true);
                        }
                    }
                }
                Ok(any)
            }
            CFormula::Implies(f1, f2) => {
                let antecedent = self.satisfies(f1)?;
                if !antecedent && self.config.short_circuit {
                    return Ok(true);
                }
                let consequent = self.satisfies(f2)?;
                Ok(!antecedent || consequent)
            }
            CFormula::Iff(f1, f2) => {
                let a = self.satisfies(f1)?;
                let b = self.satisfies(f2)?;
                Ok(a == b)
            }
            CFormula::Exists(slot, dom, f) => {
                let size = self.quantifier_domain(*dom)?;
                let handle = self.domain_handles[*dom as usize];
                let mut found = false;
                for rank in 0..size {
                    self.stats.quantifier_values += 1;
                    self.tracer.draw(*slot);
                    let value = self.domains.nth(handle, rank as u128, &mut self.store)?;
                    self.env[*slot as usize] = Some(value);
                    let holds = self.satisfies(f)?;
                    if holds {
                        found = true;
                        if self.config.short_circuit {
                            break;
                        }
                    }
                }
                Ok(found)
            }
            CFormula::Forall(slot, dom, f) => {
                let size = self.quantifier_domain(*dom)?;
                let handle = self.domain_handles[*dom as usize];
                let mut all = true;
                for rank in 0..size {
                    self.stats.quantifier_values += 1;
                    self.tracer.draw(*slot);
                    let value = self.domains.nth(handle, rank as u128, &mut self.store)?;
                    self.env[*slot as usize] = Some(value);
                    let holds = self.satisfies(f)?;
                    if !holds {
                        all = false;
                        if self.config.short_circuit {
                            break;
                        }
                    }
                }
                Ok(all)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itq_object::{Instance, Schema, Universe};

    fn par_schema() -> Schema {
        Schema::single("PAR", Type::flat_tuple(2))
    }

    fn par_db(universe: &mut Universe, edges: &[(&str, &str)]) -> Database {
        let pairs: Vec<(Atom, Atom)> = edges
            .iter()
            .map(|(a, b)| (universe.atom(a), universe.atom(b)))
            .collect();
        Database::single("PAR", Instance::from_pairs(pairs))
    }

    fn grandparent_query() -> Query {
        let t_pair = Type::flat_tuple(2);
        let body = Formula::exists(
            "x",
            t_pair.clone(),
            Formula::exists(
                "y",
                t_pair.clone(),
                Formula::and(vec![
                    Formula::pred("PAR", Term::var("x")),
                    Formula::pred("PAR", Term::var("y")),
                    Formula::eq(Term::proj("x", 2), Term::proj("y", 1)),
                    Formula::eq(Term::proj("t", 1), Term::proj("x", 1)),
                    Formula::eq(Term::proj("t", 2), Term::proj("y", 2)),
                ]),
            ),
        );
        Query::new("t", t_pair, body, par_schema()).unwrap()
    }

    /// Both backends, same inputs — answers *and* the shared statistics
    /// counters must be identical (the compiled backend additionally reports
    /// its cache counters, which the tree walker leaves at zero).
    fn assert_backends_agree(query: &Query, db: &Database, config: &EvalConfig) {
        let compiled = compile(query).unwrap();
        let slow = query.eval_full(db, config);
        let fast = compiled.eval_full(db, config);
        match (slow, fast) {
            (Ok(slow), Ok(fast)) => {
                assert_eq!(slow.result, fast.result);
                assert_eq!(slow.stats.steps, fast.stats.steps);
                assert_eq!(slow.stats.quantifier_values, fast.stats.quantifier_values);
                assert_eq!(slow.stats.candidates_checked, fast.stats.candidates_checked);
                assert_eq!(slow.stats.max_domain_seen, fast.stats.max_domain_seen);
            }
            (Err(slow), Err(fast)) => assert_eq!(slow, fast),
            (slow, fast) => panic!("backends disagree: tree {slow:?} vs compiled {fast:?}"),
        }
    }

    #[test]
    fn grandparent_compiles_and_matches_the_tree_walker() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("Tom", "Mary"), ("Mary", "Sue"), ("Sue", "Ann")]);
        let q = grandparent_query();
        let compiled = compile(&q).unwrap();
        assert_eq!(compiled.slot_count(), 3); // t, x, y
        assert_eq!(compiled.predicates(), ["PAR".to_string()]);
        assert_backends_agree(&q, &db, &EvalConfig::default());
        assert_backends_agree(&q, &db, &EvalConfig::naive());
    }

    #[test]
    fn sibling_quantifiers_share_a_slot() {
        // ∃x (…) ∧ ∃y (…) at the same depth reuse slot 1.
        let body = Formula::and(vec![
            Formula::exists("x", Type::Atomic, Formula::pred("R", Term::var("x"))),
            Formula::exists("y", Type::Atomic, Formula::pred("R", Term::var("y"))),
        ]);
        let q = Query::new("t", Type::Atomic, body, Schema::single("R", Type::Atomic)).unwrap();
        let compiled = compile(&q).unwrap();
        assert_eq!(compiled.slot_count(), 2);
        let db = Database::single("R", Instance::from_atoms(vec![Atom(0), Atom(1)]));
        assert_backends_agree(&q, &db, &EvalConfig::default());
    }

    #[test]
    fn shadowing_resolves_to_the_nearest_binder() {
        // The inner ∃x shadows the outer one; after it closes, the outer
        // binding must be visible again.  The tree walker handles this with
        // its shadow-save/restore dance; the compiled form resolves each
        // occurrence statically — both must agree.
        let body = Formula::exists(
            "x",
            Type::Atomic,
            Formula::and(vec![
                Formula::pred("R", Term::var("x")),
                Formula::exists(
                    "x",
                    Type::Atomic,
                    Formula::not(Formula::pred("R", Term::var("x"))),
                ),
                Formula::eq(Term::var("t"), Term::var("x")),
            ]),
        );
        let q = Query::new(
            "t",
            Type::Atomic,
            body,
            Schema::single("R", Type::Atomic).with("S", Type::Atomic),
        )
        .unwrap();
        let db = Database::single("R", Instance::from_atoms(vec![Atom(0)]))
            .with("S", Instance::from_atoms(vec![Atom(1)]));
        assert_backends_agree(&q, &db, &EvalConfig::default());
        // Sanity: with a non-R atom around, the witness exists and the answer
        // is exactly R.
        let out = compile(&q)
            .unwrap()
            .eval_full(&db, &EvalConfig::default())
            .unwrap();
        assert_eq!(out.result, Instance::from_atoms(vec![Atom(0)]));
    }

    #[test]
    fn constants_are_pooled_and_enter_the_domain() {
        let c = Atom(77);
        let body = Formula::or(vec![
            Formula::eq(Term::var("t"), Term::constant(c)),
            Formula::eq(Term::constant(c), Term::var("t")),
        ]);
        let q = Query::new("t", Type::Atomic, body, Schema::single("R", Type::Atomic)).unwrap();
        let compiled = compile(&q).unwrap();
        assert_eq!(compiled.constants().len(), 1);
        let db = Database::single("R", Instance::empty());
        assert_backends_agree(&q, &db, &EvalConfig::default());
        let out = compiled.eval_full(&db, &EvalConfig::default()).unwrap();
        assert_eq!(out.result, Instance::from_atoms(vec![c]));
    }

    #[test]
    fn budget_errors_classify_identically() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        // Candidate budget.
        let big_target = Query::new(
            "t",
            Type::set(Type::flat_tuple(2)),
            Formula::truth(),
            par_schema(),
        )
        .unwrap();
        assert_backends_agree(&big_target, &db, &EvalConfig::tiny());
        // Quantifier-domain budget.
        let big_quantifier = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::exists(
                "x",
                Type::set(Type::flat_tuple(2)),
                Formula::member(Term::var("t"), Term::var("x")),
            ),
            par_schema(),
        )
        .unwrap();
        assert_backends_agree(&big_quantifier, &db, &EvalConfig::tiny());
        // Step budget.
        let config = EvalConfig {
            max_steps: 5,
            ..EvalConfig::default()
        };
        assert_backends_agree(&grandparent_query(), &db, &config);
    }

    #[test]
    fn missing_relations_error_lazily_like_the_tree_walker() {
        // `R` is declared by the schema but absent from the database; the
        // short-circuiting ∨ never evaluates it, so neither backend errors.
        let body = Formula::or(vec![
            Formula::eq(Term::var("t"), Term::var("t")),
            Formula::pred("R", Term::var("t")),
        ]);
        let q = Query::new(
            "t",
            Type::Atomic,
            body,
            Schema::single("R", Type::Atomic).with("S", Type::Atomic),
        )
        .unwrap();
        let db = Database::single("S", Instance::from_atoms(vec![Atom(0)]));
        assert_backends_agree(&q, &db, &EvalConfig::default());
        assert!(compile(&q)
            .unwrap()
            .eval_full(&db, &EvalConfig::default())
            .is_ok());
        // Under the naive strategy the ∨ is fully enumerated and both
        // backends surface the same UnknownPredicate error.
        assert_backends_agree(&q, &db, &EvalConfig::naive());
        assert!(matches!(
            compile(&q).unwrap().eval_full(&db, &EvalConfig::naive()),
            Err(CalcError::UnknownPredicate { .. })
        ));
    }

    #[test]
    fn compiled_stats_report_the_cache_counters() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c")]);
        let q = grandparent_query();
        let ev = compile(&q)
            .unwrap()
            .eval_full(&db, &EvalConfig::default())
            .unwrap();
        assert!(ev.stats.interned_values > 0);
        assert!(ev.stats.domain_cache_misses > 0);
        // 9 candidates × 2 quantifier entries hit the memoized [U,U] domain
        // far more often than it is materialised.
        assert!(ev.stats.domain_cache_hits > ev.stats.domain_cache_misses);
        // The tree walker reports zeros for all three.
        let slow = q.eval_full(&db, &EvalConfig::default()).unwrap();
        assert_eq!(slow.stats.domain_cache_hits, 0);
        assert_eq!(slow.stats.domain_cache_misses, 0);
        assert_eq!(slow.stats.interned_values, 0);
    }

    #[test]
    fn traced_evaluation_is_identical_and_counts_per_slot_draws() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("Tom", "Mary"), ("Mary", "Sue"), ("Sue", "Ann")]);
        let q = grandparent_query();
        let compiled = compile(&q).unwrap();
        let plain = compiled.eval_full(&db, &EvalConfig::default()).unwrap();
        let (traced, span) = compiled
            .eval_traced(&db, &[], &EvalConfig::default())
            .unwrap();
        assert_eq!(plain.result, traced.result);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(span.name, "compiled-eval");
        assert_eq!(
            span.field("candidates_checked"),
            Some(traced.stats.candidates_checked)
        );
        // One child per quantifier slot (t is slot 0, x and y are 1 and 2),
        // and their draws sum to the shared quantifier_values counter.
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.subtree_total("draws"), traced.stats.quantifier_values);
        assert!(span.children.iter().all(|c| c.field("draws").unwrap() > 0));
        // Budget errors classify identically on the traced path.
        let starved = EvalConfig {
            max_steps: 5,
            ..EvalConfig::default()
        };
        assert_eq!(
            compiled.eval_traced(&db, &[], &starved).unwrap_err(),
            compiled.eval_full(&db, &starved).unwrap_err()
        );
    }

    #[test]
    fn parallel_evaluation_matches_sequential_exactly() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("Tom", "Mary"), ("Mary", "Sue"), ("Sue", "Ann")]);
        let q = grandparent_query();
        let compiled = compile(&q).unwrap();
        for config in [EvalConfig::default(), EvalConfig::naive()] {
            let sequential = compiled.eval_full(&db, &config).unwrap();
            for workers in [1, 2, 3, 8, 64] {
                let parallel = compiled
                    .eval_governed_parallel(&db, &[], &config, Interrupt::disarmed(), workers)
                    .unwrap();
                assert_eq!(sequential.result, parallel.evaluation.result);
                let (s, p) = (&sequential.stats, &parallel.evaluation.stats);
                assert_eq!(s.steps, p.steps, "workers {workers}");
                assert_eq!(s.quantifier_values, p.quantifier_values);
                assert_eq!(s.candidates_checked, p.candidates_checked);
                assert_eq!(s.max_domain_seen, p.max_domain_seen);
                // Partition ranges tile the candidate space exactly once.
                let mut covered = 0;
                for part in &parallel.partitions {
                    assert_eq!(part.ranks.0, covered);
                    covered = part.ranks.1;
                }
                assert_eq!(covered, s.candidates_checked);
            }
        }
    }

    #[test]
    fn parallel_budget_errors_reconstruct_the_sequential_classification() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c"), ("c", "d")]);
        let q = grandparent_query();
        let compiled = compile(&q).unwrap();
        // Step budget: every worker count must surface the sequential error.
        let starved = EvalConfig {
            max_steps: 50,
            ..EvalConfig::default()
        };
        let sequential = compiled.eval_full(&db, &starved).unwrap_err();
        for workers in [1, 2, 8] {
            let parallel = compiled
                .eval_governed_parallel(&db, &[], &starved, Interrupt::disarmed(), workers)
                .unwrap_err();
            assert_eq!(sequential, parallel, "workers {workers}");
            assert_eq!(sequential.to_string(), parallel.to_string());
        }
        // Candidate and quantifier-domain budgets classify identically too.
        let big_quantifier = Query::new(
            "t",
            Type::flat_tuple(2),
            Formula::exists(
                "x",
                Type::set(Type::flat_tuple(2)),
                Formula::member(Term::var("t"), Term::var("x")),
            ),
            par_schema(),
        )
        .unwrap();
        let compiled_big = compile(&big_quantifier).unwrap();
        let tiny = EvalConfig::tiny();
        let sequential = compiled_big.eval_full(&db, &tiny).unwrap_err();
        for workers in [2, 8] {
            let parallel = compiled_big
                .eval_governed_parallel(&db, &[], &tiny, Interrupt::disarmed(), workers)
                .unwrap_err();
            assert_eq!(sequential, parallel);
        }
    }

    #[test]
    fn parallel_resource_trips_surface_the_canonical_messages() {
        use itq_object::CancelFlag;
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("a", "b"), ("b", "c")]);
        let compiled = compile(&grandparent_query()).unwrap();
        let flag = CancelFlag::new();
        flag.cancel();
        let cancelled = Interrupt::new().with_cancel(flag);
        let err = compiled
            .eval_governed_parallel(&db, &[], &EvalConfig::default(), &cancelled, 4)
            .unwrap_err();
        assert_eq!(err.to_string(), "execution cancelled");
        let expired = Interrupt::new().with_deadline_millis(0);
        let err = compiled
            .eval_governed_parallel(&db, &[], &EvalConfig::default(), &expired, 4)
            .unwrap_err();
        assert_eq!(err.to_string(), "execution deadline of 0 ms exceeded");
    }

    #[test]
    fn parallel_trace_breaks_the_evaluation_down_by_partition() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("Tom", "Mary"), ("Mary", "Sue")]);
        let compiled = compile(&grandparent_query()).unwrap();
        let (evaluation, span) = compiled
            .eval_traced_governed_parallel(
                &db,
                &[],
                &EvalConfig::default(),
                Interrupt::disarmed(),
                3,
            )
            .unwrap();
        assert_eq!(span.name, "compiled-eval");
        assert_eq!(span.field("partitions"), Some(3));
        assert_eq!(span.children.len(), 3);
        assert_eq!(
            span.subtree_total("candidates_checked"),
            2 * evaluation.stats.candidates_checked,
            "root field plus the partition children summing to the same total"
        );
        let plain = compiled.eval_full(&db, &EvalConfig::default()).unwrap();
        assert_eq!(plain.result, evaluation.result);
    }

    #[test]
    fn parallel_compiled_is_a_drop_in_evaluable_backend() {
        let mut u = Universe::new();
        let db = par_db(&mut u, &[("Tom", "Mary"), ("Mary", "Sue")]);
        let q = grandparent_query();
        let compiled = compile(&q).unwrap();
        let wrapper = ParallelCompiled::new(&compiled, 4);
        let via_wrapper =
            Evaluable::eval_with_extra(&wrapper, &db, &[], &EvalConfig::default()).unwrap();
        let sequential = compiled.eval_full(&db, &EvalConfig::default()).unwrap();
        assert_eq!(via_wrapper.result, sequential.result);
        assert_eq!(via_wrapper.stats.steps, sequential.stats.steps);
        assert_eq!(
            Evaluable::evaluation_domain(&wrapper, &db),
            Evaluable::evaluation_domain(&compiled, &db)
        );
    }

    #[test]
    fn eval_with_extra_extends_the_range() {
        let q = Query::new(
            "t",
            Type::Atomic,
            Formula::truth(),
            Schema::single("R", Type::Atomic),
        )
        .unwrap();
        let db = Database::single("R", Instance::from_atoms(vec![Atom(0)]));
        let compiled = compile(&q).unwrap();
        let plain = compiled.eval_full(&db, &EvalConfig::default()).unwrap();
        assert_eq!(plain.result.len(), 1);
        let extended = Evaluable::eval_with_extra(
            &compiled,
            &db,
            &[Atom(100), Atom(101)],
            &EvalConfig::default(),
        )
        .unwrap();
        assert_eq!(extended.result.len(), 3);
        // The evaluation domain itself matches the source query's.
        assert_eq!(
            Evaluable::evaluation_domain(&compiled, &db),
            q.evaluation_domain(&db)
        );
    }
}
