//! Property-based tests for formula transformations: implication elimination,
//! negation normal form, prenexing, and semantic preservation on randomly
//! generated closed sentences over a small flat schema.

use itq_calculus::eval::{satisfies_sentence, EvalConfig};
use itq_calculus::normal::{eliminate_implications, negation_normal_form, to_prenex};
use itq_calculus::{Formula, Term};
use itq_object::{Atom, Database, Instance, Type};
use proptest::prelude::*;

/// The variables available to generated formulas: two atomic, two pair-typed.
const ATOM_VARS: [&str; 2] = ["u", "v"];
const PAIR_VARS: [&str; 2] = ["p", "q"];

/// Strategy: an atomic formula over the fixed variable pool.
fn atomic_formula() -> impl Strategy<Value = Formula> {
    prop_oneof![
        // Equalities between atomic variables or constants.
        (0usize..2, 0usize..2)
            .prop_map(|(i, j)| Formula::eq(Term::var(ATOM_VARS[i]), Term::var(ATOM_VARS[j]))),
        (0usize..2, 0u32..2)
            .prop_map(|(i, c)| Formula::eq(Term::var(ATOM_VARS[i]), Term::constant(Atom(c)))),
        // Predicate atoms.
        (0usize..2).prop_map(|i| Formula::pred("R", Term::var(ATOM_VARS[i]))),
        (0usize..2).prop_map(|i| Formula::pred("PAR", Term::var(PAIR_VARS[i]))),
        // Projections from the pair variables.
        (0usize..2, 1usize..3, 0usize..2).prop_map(|(i, coord, j)| Formula::eq(
            Term::proj(PAIR_VARS[i], coord),
            Term::var(ATOM_VARS[j])
        )),
    ]
}

/// Strategy: a quantifier-free body built from the atomic formulas.
fn body() -> impl Strategy<Value = Formula> {
    atomic_formula().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::iff(a, b)),
        ]
    })
}

/// Strategy: a closed sentence — the body wrapped in quantifiers binding all four
/// variables (in random order/flavour).
fn sentence() -> impl Strategy<Value = Formula> {
    (body(), proptest::collection::vec(any::<bool>(), 4)).prop_map(|(matrix, flavours)| {
        let mut formula = matrix;
        let bindings = [
            (ATOM_VARS[0], Type::Atomic),
            (ATOM_VARS[1], Type::Atomic),
            (PAIR_VARS[0], Type::flat_tuple(2)),
            (PAIR_VARS[1], Type::flat_tuple(2)),
        ];
        for ((name, ty), exists) in bindings.into_iter().zip(flavours) {
            formula = if exists {
                Formula::exists(name, ty, formula)
            } else {
                Formula::forall(name, ty, formula)
            };
        }
        formula
    })
}

fn sample_db() -> Database {
    Database::single(
        "PAR",
        Instance::from_pairs(vec![(Atom(0), Atom(1)), (Atom(1), Atom(2))]),
    )
    .with("R", Instance::from_atoms(vec![Atom(0), Atom(2)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Implication elimination removes every `→` and `↔`, and NNF leaves negation
    /// only on atoms — while both preserve the set of free variables.
    #[test]
    fn normal_forms_preserve_structure(f in body()) {
        let no_implications = eliminate_implications(&f);
        no_implications.visit(&mut |sub| {
            assert!(!matches!(sub, Formula::Implies(..) | Formula::Iff(..)));
            true
        });
        let nnf = negation_normal_form(&f);
        nnf.visit(&mut |sub| {
            if let Formula::Not(inner) = sub {
                assert!(matches!(
                    inner.as_ref(),
                    Formula::Eq(..) | Formula::Member(..) | Formula::Pred(..)
                ));
            }
            true
        });
        prop_assert_eq!(no_implications.free_vars(), f.free_vars());
        prop_assert_eq!(nnf.free_vars(), f.free_vars());
    }

    /// Prenexing produces a quantifier-free matrix, keeps the number of
    /// quantifiers, and closed sentences keep their truth value on a concrete
    /// database (all quantified types have non-empty domains here).
    #[test]
    fn prenex_preserves_semantics_of_closed_sentences(s in sentence()) {
        let prenex = to_prenex(&s);
        prop_assert_eq!(prenex.matrix.quantifier_count(), 0);
        prop_assert!(prenex.prefix.len() >= s.quantifier_count());
        let rebuilt = prenex.to_formula();
        prop_assert!(rebuilt.free_vars().is_empty());

        let db = sample_db();
        let config = EvalConfig::default();
        let direct = satisfies_sentence(&s, &db, &[], &config).unwrap();
        let via_prenex = satisfies_sentence(&rebuilt, &db, &[], &config).unwrap();
        prop_assert_eq!(direct, via_prenex);
    }

    /// Negation normal form also preserves semantics on closed sentences.
    #[test]
    fn nnf_preserves_semantics_of_closed_sentences(s in sentence()) {
        let db = sample_db();
        let config = EvalConfig::default();
        let direct = satisfies_sentence(&s, &db, &[], &config).unwrap();
        let nnf = negation_normal_form(&s);
        let via_nnf = satisfies_sentence(&nnf, &db, &[], &config).unwrap();
        prop_assert_eq!(direct, via_nnf);
    }

    /// The naive (non-short-circuiting) evaluator agrees with the pruned one on
    /// closed sentences.
    #[test]
    fn evaluation_strategies_agree(s in sentence()) {
        let db = sample_db();
        let pruned = satisfies_sentence(&s, &db, &[], &EvalConfig::default()).unwrap();
        let naive = satisfies_sentence(&s, &db, &[], &EvalConfig::naive()).unwrap();
        prop_assert_eq!(pruned, naive);
    }

    /// Double negation does not change the truth value.
    #[test]
    fn double_negation_is_identity(s in sentence()) {
        let db = sample_db();
        let config = EvalConfig::default();
        let direct = satisfies_sentence(&s, &db, &[], &config).unwrap();
        let doubled = Formula::not(Formula::not(s));
        prop_assert_eq!(satisfies_sentence(&doubled, &db, &[], &config).unwrap(), direct);
    }
}
