//! Relational algebra + while: the imperative fixpoint language referenced in
//! Remark 3.6 (Chandra's "programming primitives", PSPACE-complete with order).
//!
//! A [`WhileProgram`] is a sequence of assignments of relational-algebra
//! expressions to named relation variables, plus `while <rel> changes` /
//! `while <rel> nonempty` loops.  Loops carry an iteration budget so that a
//! diverging program terminates with an error instead of hanging the benchmark
//! harness.

use crate::ops;
use crate::relation::Relation;
use itq_object::Atom;
use std::collections::BTreeMap;
use std::fmt;

/// A relational-algebra expression over named relation variables.
#[derive(Debug, Clone, PartialEq)]
pub enum RaExpr {
    /// A named relation variable.
    Rel(String),
    /// An explicit constant relation.
    Const(Relation),
    /// Union of two expressions of equal arity.
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Difference of two expressions of equal arity.
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Intersection of two expressions of equal arity.
    Intersect(Box<RaExpr>, Box<RaExpr>),
    /// Projection onto 1-based coordinates.
    Project(Vec<usize>, Box<RaExpr>),
    /// Selection: coordinate equals constant.
    SelectConst(usize, Atom, Box<RaExpr>),
    /// Selection: two coordinates are equal.
    SelectEq(usize, usize, Box<RaExpr>),
    /// Cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Composition of two binary relations (join + project), provided directly
    /// because it is the workhorse of the closure benchmarks.
    Compose(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// A named relation variable.
    pub fn rel(name: &str) -> RaExpr {
        RaExpr::Rel(name.to_string())
    }

    /// Evaluate the expression in an environment of named relations.
    pub fn eval(&self, env: &BTreeMap<String, Relation>) -> Result<Relation, WhileError> {
        match self {
            RaExpr::Rel(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| WhileError::UnknownRelation { name: name.clone() }),
            RaExpr::Const(rel) => Ok(rel.clone()),
            RaExpr::Union(a, b) => Ok(a.eval(env)?.union(&b.eval(env)?)),
            RaExpr::Diff(a, b) => Ok(a.eval(env)?.difference(&b.eval(env)?)),
            RaExpr::Intersect(a, b) => Ok(a.eval(env)?.intersection(&b.eval(env)?)),
            RaExpr::Project(coords, a) => Ok(ops::project(&a.eval(env)?, coords)),
            RaExpr::SelectConst(coord, value, a) => {
                Ok(ops::select_const(&a.eval(env)?, *coord, *value))
            }
            RaExpr::SelectEq(c1, c2, a) => Ok(ops::select_eq(&a.eval(env)?, *c1, *c2)),
            RaExpr::Product(a, b) => Ok(ops::product(&a.eval(env)?, &b.eval(env)?)),
            RaExpr::Compose(a, b) => Ok(ops::compose(&a.eval(env)?, &b.eval(env)?)),
        }
    }
}

/// A statement of the while language.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `name := expr`.
    Assign(String, RaExpr),
    /// `while <watched> keeps changing do body` — the inflationary loop used for
    /// fixpoint computations.
    WhileChanges {
        /// The relation variable whose stabilisation ends the loop.
        watched: String,
        /// The loop body.
        body: Vec<Statement>,
    },
    /// `while <watched> is nonempty do body`.
    WhileNonempty {
        /// The relation variable whose emptiness ends the loop.
        watched: String,
        /// The loop body.
        body: Vec<Statement>,
    },
}

/// Errors raised by while-program evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhileError {
    /// A relation variable was read before being assigned.
    UnknownRelation {
        /// The missing variable.
        name: String,
    },
    /// A loop exceeded the iteration budget.
    IterationBudget {
        /// The configured maximum number of iterations.
        limit: u64,
    },
}

impl fmt::Display for WhileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhileError::UnknownRelation { name } => write!(f, "unknown relation variable {name}"),
            WhileError::IterationBudget { limit } => {
                write!(f, "while loop exceeded {limit} iterations")
            }
        }
    }
}

impl std::error::Error for WhileError {}

/// A while program: statements executed in order over an environment of named
/// relations.
#[derive(Debug, Clone, PartialEq)]
pub struct WhileProgram {
    /// The program body.
    pub statements: Vec<Statement>,
    /// Maximum number of iterations any single loop may perform.
    pub max_iterations: u64,
}

impl WhileProgram {
    /// Build a program with the default iteration budget.
    pub fn new(statements: Vec<Statement>) -> WhileProgram {
        WhileProgram {
            statements,
            max_iterations: 1_000_000,
        }
    }

    /// Run the program, mutating the environment in place.
    pub fn run(&self, env: &mut BTreeMap<String, Relation>) -> Result<(), WhileError> {
        for statement in &self.statements {
            self.run_statement(statement, env)?;
        }
        Ok(())
    }

    fn run_statement(
        &self,
        statement: &Statement,
        env: &mut BTreeMap<String, Relation>,
    ) -> Result<(), WhileError> {
        match statement {
            Statement::Assign(name, expr) => {
                let value = expr.eval(env)?;
                env.insert(name.clone(), value);
                Ok(())
            }
            Statement::WhileChanges { watched, body } => {
                crate::fixpoint::bounded_loop(
                    self.max_iterations,
                    || {
                        let before = env.get(watched).cloned();
                        for s in body {
                            self.run_statement(s, env)?;
                        }
                        Ok(before.as_ref() != env.get(watched))
                    },
                    |limit| WhileError::IterationBudget { limit },
                )?;
                Ok(())
            }
            Statement::WhileNonempty { watched, body } => {
                crate::fixpoint::bounded_loop(
                    self.max_iterations,
                    || {
                        let drained = env
                            .get(watched)
                            .ok_or_else(|| WhileError::UnknownRelation {
                                name: watched.clone(),
                            })?
                            .is_empty();
                        if drained {
                            return Ok(false);
                        }
                        for s in body {
                            self.run_statement(s, env)?;
                        }
                        Ok(true)
                    },
                    |limit| WhileError::IterationBudget { limit },
                )?;
                Ok(())
            }
        }
    }
}

/// The canonical while-program for transitive closure: `T := E; ΔT := E;`
/// `while T changes { T := T ∪ (ΔT ∘ E); ΔT := T ∘ E − T }` — written in the
/// simple "recompute and absorb" style the language affords.
pub fn transitive_closure_program() -> WhileProgram {
    WhileProgram::new(vec![
        Statement::Assign("T".to_string(), RaExpr::rel("E")),
        Statement::WhileChanges {
            watched: "T".to_string(),
            body: vec![Statement::Assign(
                "T".to_string(),
                RaExpr::Union(
                    Box::new(RaExpr::rel("T")),
                    Box::new(RaExpr::Compose(
                        Box::new(RaExpr::rel("T")),
                        Box::new(RaExpr::rel("E")),
                    )),
                ),
            )],
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::transitive_closure_seminaive;

    fn a(n: u32) -> Atom {
        Atom(n)
    }

    #[test]
    fn transitive_closure_while_program_matches_baseline() {
        let edges = Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2)), (a(2), a(3))]);
        let mut env = BTreeMap::new();
        env.insert("E".to_string(), edges.clone());
        transitive_closure_program().run(&mut env).unwrap();
        assert_eq!(env["T"], transitive_closure_seminaive(&edges));
    }

    #[test]
    fn ra_expressions_evaluate() {
        let mut env = BTreeMap::new();
        env.insert(
            "R".to_string(),
            Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(1))]),
        );
        let expr = RaExpr::Project(
            vec![1],
            Box::new(RaExpr::SelectEq(1, 2, Box::new(RaExpr::rel("R")))),
        );
        assert_eq!(expr.eval(&env).unwrap(), Relation::from_atoms(vec![a(1)]));
        let product = RaExpr::Product(Box::new(RaExpr::rel("R")), Box::new(RaExpr::rel("R")));
        assert_eq!(product.eval(&env).unwrap().arity(), 4);
        let with_const = RaExpr::Diff(
            Box::new(RaExpr::rel("R")),
            Box::new(RaExpr::Const(Relation::from_pairs(vec![(a(1), a(1))]))),
        );
        assert_eq!(with_const.eval(&env).unwrap().len(), 1);
        let filtered = RaExpr::SelectConst(1, a(0), Box::new(RaExpr::rel("R")));
        assert_eq!(filtered.eval(&env).unwrap().len(), 1);
        let meet = RaExpr::Intersect(Box::new(RaExpr::rel("R")), Box::new(RaExpr::rel("R")));
        assert_eq!(meet.eval(&env).unwrap().len(), 2);
        assert!(RaExpr::rel("missing").eval(&env).is_err());
    }

    #[test]
    fn while_nonempty_drains_a_worklist() {
        // Repeatedly remove tuples reachable in one step from the worklist.
        let program = WhileProgram::new(vec![Statement::WhileNonempty {
            watched: "W".to_string(),
            body: vec![
                Statement::Assign(
                    "Seen".to_string(),
                    RaExpr::Union(Box::new(RaExpr::rel("Seen")), Box::new(RaExpr::rel("W"))),
                ),
                Statement::Assign(
                    "W".to_string(),
                    RaExpr::Diff(
                        Box::new(RaExpr::Compose(
                            Box::new(RaExpr::rel("W")),
                            Box::new(RaExpr::rel("E")),
                        )),
                        Box::new(RaExpr::rel("Seen")),
                    ),
                ),
            ],
        }]);
        let mut env = BTreeMap::new();
        env.insert(
            "E".to_string(),
            Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2))]),
        );
        env.insert("W".to_string(), Relation::from_pairs(vec![(a(0), a(0))]));
        env.insert("Seen".to_string(), Relation::empty(2));
        program.run(&mut env).unwrap();
        assert!(env["W"].is_empty());
        assert_eq!(env["Seen"].len(), 3);
    }

    #[test]
    fn iteration_budget_stops_divergent_loops() {
        let mut program = WhileProgram::new(vec![Statement::WhileNonempty {
            watched: "R".to_string(),
            body: vec![Statement::Assign("R".to_string(), RaExpr::rel("R"))],
        }]);
        program.max_iterations = 10;
        let mut env = BTreeMap::new();
        env.insert("R".to_string(), Relation::from_atoms(vec![a(0)]));
        assert!(matches!(
            program.run(&mut env),
            Err(WhileError::IterationBudget { limit: 10 })
        ));
    }

    #[test]
    fn unknown_relations_are_reported() {
        let program = WhileProgram::new(vec![Statement::Assign(
            "X".to_string(),
            RaExpr::rel("missing"),
        )]);
        let mut env = BTreeMap::new();
        assert!(matches!(
            program.run(&mut env),
            Err(WhileError::UnknownRelation { .. })
        ));
        let err = WhileError::UnknownRelation {
            name: "missing".to_string(),
        };
        assert!(err.to_string().contains("missing"));
    }
}
