//! Transitive-closure baselines (experiment E2).
//!
//! The paper's motivating example (Example 3.1, after Vardi 1982 and
//! Abiteboul–Beeri) is that transitive closure is expressible in `CALC_{0,1}` via
//! an intermediate type of set-height 1 but not in the relational calculus
//! `CALC_{0,0}`.  To give that claim an executable baseline, this module provides
//! three classical polynomial-time algorithms for transitive closure; the
//! benchmark harness compares them against the powerset-based calculus and
//! algebra formulations.

use crate::ops::compose;
use crate::relation::Relation;
use itq_object::Atom;
use std::collections::{BTreeMap, BTreeSet};

/// Naive iteration: repeatedly add `R ∘ T` to `T` until nothing changes,
/// recomputing the full composition each round.
pub fn transitive_closure_naive(edges: &Relation) -> Relation {
    assert_eq!(edges.arity(), 2);
    let mut closure = edges.clone();
    loop {
        let step = compose(&closure, edges);
        if closure.absorb(&step) == 0 {
            return closure;
        }
    }
}

/// Semi-naive (differential) iteration: only join the *new* pairs discovered in
/// the previous round against the base relation.  The delta loop itself lives
/// in [`crate::fixpoint::seminaive`], shared with the Datalog engine and the
/// incremental view-refresh path.
pub fn transitive_closure_seminaive(edges: &Relation) -> Relation {
    assert_eq!(edges.arity(), 2);
    crate::fixpoint::seminaive(edges, |_, delta| compose(delta, edges))
}

/// Floyd–Warshall-style closure over the active domain.
pub fn transitive_closure_warshall(edges: &Relation) -> Relation {
    assert_eq!(edges.arity(), 2);
    let nodes: Vec<Atom> = edges.active_domain().into_iter().collect();
    let index: BTreeMap<Atom, usize> = nodes.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    let n = nodes.len();
    let mut reach = vec![false; n * n];
    for t in edges.iter() {
        reach[index[&t[0]] * n + index[&t[1]]] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i * n + k] {
                for j in 0..n {
                    if reach[k * n + j] {
                        reach[i * n + j] = true;
                    }
                }
            }
        }
    }
    let mut out = Relation::empty(2);
    for i in 0..n {
        for j in 0..n {
            if reach[i * n + j] {
                out.insert(vec![nodes[i], nodes[j]]);
            }
        }
    }
    out
}

/// Reachable set from a single source (BFS) — used to cross-check the closure
/// algorithms in tests.
pub fn reachable_from(edges: &Relation, source: Atom) -> BTreeSet<Atom> {
    let mut adjacency: BTreeMap<Atom, Vec<Atom>> = BTreeMap::new();
    for t in edges.iter() {
        adjacency.entry(t[0]).or_default().push(t[1]);
    }
    let mut seen = BTreeSet::new();
    let mut frontier = vec![source];
    while let Some(node) = frontier.pop() {
        if let Some(next) = adjacency.get(&node) {
            for &m in next {
                if seen.insert(m) {
                    frontier.push(m);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Atom {
        Atom(n)
    }

    fn chain(n: u32) -> Relation {
        Relation::from_pairs((0..n - 1).map(|i| (a(i), a(i + 1))))
    }

    fn cycle(n: u32) -> Relation {
        Relation::from_pairs((0..n).map(|i| (a(i), a((i + 1) % n))))
    }

    #[test]
    fn closure_of_a_chain() {
        let edges = chain(5);
        let expected: Relation =
            Relation::from_pairs((0..5u32).flat_map(|i| ((i + 1)..5).map(move |j| (a(i), a(j)))));
        assert_eq!(transitive_closure_naive(&edges), expected);
        assert_eq!(transitive_closure_seminaive(&edges), expected);
        assert_eq!(transitive_closure_warshall(&edges), expected);
    }

    #[test]
    fn closure_of_a_cycle_is_complete() {
        let edges = cycle(4);
        let closure = transitive_closure_seminaive(&edges);
        assert_eq!(closure.len(), 16);
        assert_eq!(transitive_closure_naive(&edges), closure);
        assert_eq!(transitive_closure_warshall(&edges), closure);
    }

    #[test]
    fn all_three_algorithms_agree_on_a_dag_with_branches() {
        let edges = Relation::from_pairs(vec![
            (a(0), a(1)),
            (a(0), a(2)),
            (a(1), a(3)),
            (a(2), a(3)),
            (a(3), a(4)),
            (a(5), a(5)),
        ]);
        let c1 = transitive_closure_naive(&edges);
        let c2 = transitive_closure_seminaive(&edges);
        let c3 = transitive_closure_warshall(&edges);
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
        assert!(c1.contains(&[a(0), a(4)]));
        assert!(c1.contains(&[a(5), a(5)]));
        assert!(!c1.contains(&[a(4), a(0)]));
    }

    #[test]
    fn closure_agrees_with_bfs_reachability() {
        let edges =
            Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2)), (a(2), a(1)), (a(3), a(0))]);
        let closure = transitive_closure_seminaive(&edges);
        for &source in &[a(0), a(1), a(2), a(3)] {
            let reach = reachable_from(&edges, source);
            for &target in &[a(0), a(1), a(2), a(3)] {
                assert_eq!(
                    closure.contains(&[source, target]),
                    reach.contains(&target),
                    "source {source} target {target}"
                );
            }
        }
    }

    #[test]
    fn empty_relation_has_empty_closure() {
        let edges = Relation::empty(2);
        assert!(transitive_closure_naive(&edges).is_empty());
        assert!(transitive_closure_seminaive(&edges).is_empty());
        assert!(transitive_closure_warshall(&edges).is_empty());
    }
}
