//! Flat relations over atoms.
//!
//! A [`Relation`] is a finite set of fixed-arity tuples of atoms — the relational
//! model's view of an instance of a type in `τ_0`.  It interoperates with the
//! complex-object model ([`Instance`]) so that baseline algorithms and the
//! calculus/algebra evaluators can be compared on identical inputs.

use itq_object::{Atom, Instance, Type, Value};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A flat relation: a set of `arity`-wide tuples of atoms.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Vec<Atom>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Build a relation from tuples; panics if the tuples disagree on arity.
    pub fn from_tuples<I: IntoIterator<Item = Vec<Atom>>>(arity: usize, tuples: I) -> Self {
        let mut rel = Relation::empty(arity);
        for t in tuples {
            rel.insert(t);
        }
        rel
    }

    /// Build a binary relation from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> Self {
        Relation::from_tuples(2, pairs.into_iter().map(|(a, b)| vec![a, b]))
    }

    /// Build a unary relation from atoms.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        Relation::from_tuples(1, atoms.into_iter().map(|a| vec![a]))
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; panics on arity mismatch; returns whether it was new.
    pub fn insert(&mut self, tuple: Vec<Atom>) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.len(),
            self.arity
        );
        self.tuples.insert(tuple)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Atom]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Atom>> {
        self.tuples.iter()
    }

    /// The set of atoms occurring in the relation.
    pub fn active_domain(&self) -> BTreeSet<Atom> {
        self.tuples.iter().flatten().copied().collect()
    }

    /// Union with another relation of the same arity.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// Set difference with another relation of the same arity.
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Intersection with another relation of the same arity.
    pub fn intersection(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// Merge `other` into `self`, returning the number of new tuples.
    pub fn absorb(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity);
        let before = self.tuples.len();
        for t in &other.tuples {
            self.tuples.insert(t.clone());
        }
        self.tuples.len() - before
    }

    /// Convert to a complex-object instance of the flat tuple type of this arity
    /// (arity-1 relations become instances of `U`, matching the paper's examples
    /// such as `PERSON : U`).
    pub fn to_instance(&self) -> Instance {
        if self.arity == 1 {
            Instance::from_atoms(self.tuples.iter().map(|t| t[0]))
        } else {
            Instance::from_values(
                self.tuples
                    .iter()
                    .map(|t| Value::atom_tuple(t.iter().copied())),
            )
        }
    }

    /// The flat type corresponding to this relation (`U` for arity 1, `[U,…,U]`
    /// otherwise).
    pub fn flat_type(&self) -> Type {
        if self.arity == 1 {
            Type::Atomic
        } else {
            Type::flat_tuple(self.arity)
        }
    }

    /// Convert a flat complex-object instance back into a relation.  Returns
    /// `None` if any value is not a flat tuple of atoms (or a bare atom).
    pub fn from_instance(instance: &Instance) -> Option<Relation> {
        let mut arity = None;
        let mut tuples = Vec::new();
        for v in instance.iter() {
            let tuple: Vec<Atom> = match v {
                Value::Atom(a) => vec![*a],
                Value::Tuple(components) => components
                    .iter()
                    .map(|c| c.as_atom())
                    .collect::<Option<Vec<Atom>>>()?,
                Value::Set(_) => return None,
            };
            match arity {
                None => arity = Some(tuple.len()),
                Some(a) if a != tuple.len() => return None,
                _ => {}
            }
            tuples.push(tuple);
        }
        let arity = arity.unwrap_or(0);
        Some(Relation::from_tuples(arity.max(1), tuples))
    }

    /// A hash-set view of the tuples (used by join implementations).
    pub fn to_hashset(&self) -> HashSet<Vec<Atom>> {
        self.tuples.iter().cloned().collect()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation/{}{{", self.arity)?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, a) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Atom {
        Atom(n)
    }

    #[test]
    fn construction_and_membership() {
        let r = Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2)), (a(0), a(1))]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[a(0), a(1)]));
        assert!(!r.contains(&[a(1), a(0)]));
        assert!(!r.is_empty());
        assert_eq!(r.active_domain().len(), 3);
        let u = Relation::from_atoms(vec![a(5), a(6)]);
        assert_eq!(u.arity(), 1);
        assert_eq!(u.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::empty(2);
        r.insert(vec![a(0)]);
    }

    #[test]
    fn set_operations() {
        let r = Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2))]);
        let s = Relation::from_pairs(vec![(a(1), a(2)), (a(2), a(3))]);
        assert_eq!(r.union(&s).len(), 3);
        assert_eq!(r.intersection(&s).len(), 1);
        assert_eq!(r.difference(&s).len(), 1);
        let mut acc = r.clone();
        assert_eq!(acc.absorb(&s), 1);
        assert_eq!(acc.absorb(&s), 0);
        assert_eq!(acc.len(), 3);
    }

    #[test]
    fn instance_round_trip_binary() {
        let r = Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2))]);
        let inst = r.to_instance();
        assert!(inst.conforms_to(&r.flat_type()));
        let back = Relation::from_instance(&inst).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn instance_round_trip_unary() {
        let r = Relation::from_atoms(vec![a(0), a(1)]);
        assert_eq!(r.flat_type(), Type::Atomic);
        let inst = r.to_instance();
        let back = Relation::from_instance(&inst).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_instance_rejects_non_flat_values() {
        let inst = Instance::from_values(vec![Value::set(vec![Value::Atom(a(0))])]);
        assert!(Relation::from_instance(&inst).is_none());
        let mixed = Instance::from_values(vec![
            Value::pair(a(0), a(1)),
            Value::atom_tuple(vec![a(0), a(1), a(2)]),
        ]);
        assert!(Relation::from_instance(&mixed).is_none());
    }

    #[test]
    fn debug_rendering() {
        let r = Relation::from_pairs(vec![(a(0), a(1))]);
        let s = format!("{r:?}");
        assert!(s.contains("Relation/2"));
        assert!(s.contains("(a0,a1)"));
    }
}
