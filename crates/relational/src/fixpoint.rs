//! Shared semi-naive (differential) fixpoint drivers.
//!
//! Three corners of this crate used to carry their own copy of the same loop:
//! [`crate::tc`]'s semi-naive transitive closure, [`crate::datalog`]'s
//! delta-position rule firing, and [`crate::while_loop`]'s budgeted
//! `while … changes` driver.  This module lifts the loop out once, in three
//! shapes:
//!
//! * [`seminaive`] / [`seminaive_from`]: the single-relation differential
//!   iteration (`delta := new facts; total ∪= delta; repeat`) — `_from`
//!   additionally accepts a warm `total`, which is what makes *incremental*
//!   maintenance possible: after an insertion, re-seed the loop with the old
//!   fixpoint as `total` and only the inserted tuples as `delta`;
//! * [`seminaive_store`]: the same iteration over a named family of relations
//!   (the Datalog IDB/EDB store), used by [`crate::datalog::Program::evaluate`]
//!   and by the incremental view-refresh path in the engine;
//! * [`bounded_loop`]: the budget-guarded generic loop driver behind the
//!   `while` statements.

use crate::relation::Relation;
use itq_object::{Interrupt, ResourceError};
use std::collections::BTreeMap;

/// Run a semi-naive fixpoint from scratch: `total` and `delta` both start at
/// `seed`, and each round `step(&total, &delta)` proposes candidate facts, of
/// which only the genuinely new ones feed the next round.
///
/// `step` receives the *current* total and the previous round's delta; it may
/// over-derive (return already-known facts) — the driver filters against
/// `total` before iterating.
pub fn seminaive(seed: &Relation, step: impl FnMut(&Relation, &Relation) -> Relation) -> Relation {
    seminaive_from(seed.clone(), seed, step).0
}

/// Run a semi-naive fixpoint from a warm start: `total` already holds known
/// facts (e.g. yesterday's fixpoint plus today's insertions) and only
/// `delta_seed` is treated as new.  Returns the fixpoint and the number of
/// rounds the loop ran.
///
/// The warm start is sound whenever `total` is contained in the final
/// fixpoint — for an inflationary operator the iteration can only ever add
/// facts that the from-scratch run would also derive.
pub fn seminaive_from(
    total: Relation,
    delta_seed: &Relation,
    step: impl FnMut(&Relation, &Relation) -> Relation,
) -> (Relation, u64) {
    seminaive_from_governed(total, delta_seed, step, Interrupt::disarmed())
        .unwrap_or_else(|_| unreachable!("a disarmed interrupt never reports a resource error"))
}

/// [`seminaive_from`] under a resource governor: the interrupt is polled once
/// before the loop and once per fixpoint round, so a deadline or cancellation
/// stops a diverging (or merely large) closure between rounds.
///
/// On an error the partially-built total is discarded — fixpoint state is
/// only ever published to callers on success.
pub fn seminaive_from_governed(
    total: Relation,
    delta_seed: &Relation,
    mut step: impl FnMut(&Relation, &Relation) -> Relation,
    interrupt: &Interrupt,
) -> Result<(Relation, u64), ResourceError> {
    interrupt.check(0)?;
    let mut total = total;
    total.absorb(delta_seed);
    let mut delta = delta_seed.clone();
    let mut rounds = 0;
    while !delta.is_empty() {
        rounds += 1;
        interrupt.check(0)?;
        let candidate = step(&total, &delta);
        let new = candidate.difference(&total);
        total.absorb(&new);
        delta = new;
    }
    Ok((total, rounds))
}

/// A named family of relations — the store a Datalog program evaluates over.
pub type RelationStore = BTreeMap<String, Relation>;

/// Run a semi-naive fixpoint over a named family of relations, in place.
///
/// `seed` is absorbed into `total` and becomes the first delta; each round
/// `step(&total, &delta)` proposes per-relation candidate facts (it may
/// over-derive), the driver keeps only the tuples not already in `total`,
/// absorbs them, and feeds them to the next round as the new delta.  Returns
/// the number of rounds in which anything new was derived.
///
/// With `total` empty this is exactly bottom-up Datalog evaluation; with
/// `total` holding a previous fixpoint and `seed` holding freshly inserted
/// EDB facts it is incremental (insertion-only) maintenance of that fixpoint.
pub fn seminaive_store(
    total: &mut RelationStore,
    seed: RelationStore,
    step: impl FnMut(&RelationStore, &RelationStore) -> RelationStore,
) -> u64 {
    seminaive_store_governed(total, seed, step, Interrupt::disarmed())
        .unwrap_or_else(|_| unreachable!("a disarmed interrupt never reports a resource error"))
}

/// [`seminaive_store`] under a resource governor, polled once per round.
///
/// On an error `total` may already hold a prefix of the derivation; callers
/// that need transactional behaviour (the incremental engine does) must run
/// against a scratch copy and swap on success.
pub fn seminaive_store_governed(
    total: &mut RelationStore,
    seed: RelationStore,
    mut step: impl FnMut(&RelationStore, &RelationStore) -> RelationStore,
    interrupt: &Interrupt,
) -> Result<u64, ResourceError> {
    interrupt.check(0)?;
    let mut delta = seed;
    for (pred, rel) in &delta {
        total
            .entry(pred.clone())
            .or_insert_with(|| Relation::empty(rel.arity()))
            .absorb(rel);
    }
    delta.retain(|_, rel| !rel.is_empty());
    let mut rounds = 0;
    while !delta.is_empty() {
        interrupt.check(0)?;
        let derived = step(total, &delta);
        let mut fresh = RelationStore::new();
        for (pred, rel) in derived {
            let existing = total
                .entry(pred.clone())
                .or_insert_with(|| Relation::empty(rel.arity()));
            let new = rel.difference(existing);
            if !new.is_empty() {
                existing.absorb(&new);
                fresh.insert(pred, new);
            }
        }
        if fresh.is_empty() {
            return Ok(rounds);
        }
        rounds += 1;
        delta = fresh;
    }
    Ok(rounds)
}

/// Drive a loop under an iteration budget: `round` runs once per iteration
/// and returns `Ok(true)` to continue or `Ok(false)` to stop; after
/// `max_iterations` continuing rounds the driver stops with
/// `budget(max_iterations)` instead.  Returns the number of completed rounds.
///
/// This is the shared engine behind the `while … changes` / `while …
/// nonempty` statements: both express their stopping condition inside
/// `round`, and the budget guard lives here, once.
pub fn bounded_loop<E>(
    max_iterations: u64,
    mut round: impl FnMut() -> Result<bool, E>,
    budget: impl FnOnce(u64) -> E,
) -> Result<u64, E> {
    let mut iterations = 0u64;
    loop {
        if !round()? {
            return Ok(iterations);
        }
        iterations += 1;
        if iterations >= max_iterations {
            return Err(budget(max_iterations));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::compose;
    use itq_object::Atom;

    fn a(n: u32) -> Atom {
        Atom(n)
    }

    fn chain(n: u32) -> Relation {
        Relation::from_pairs((0..n - 1).map(|i| (a(i), a(i + 1))))
    }

    #[test]
    fn seminaive_computes_transitive_closure() {
        let edges = chain(5);
        let closure = seminaive(&edges, |_, delta| compose(delta, &edges));
        assert_eq!(closure.len(), 10); // 4+3+2+1 pairs
        assert!(closure.contains(&[a(0), a(4)]));
    }

    #[test]
    fn warm_start_matches_from_scratch_after_an_insert() {
        // Close chain 0→1→2, then insert 2→3 and re-close from the warm total
        // using the doubly-recursive step (delta on either side).
        let old_edges = chain(3);
        let old_closure = seminaive(&old_edges, |_, delta| compose(delta, &old_edges));
        let inserted = Relation::from_pairs(vec![(a(2), a(3))]);
        let (warm, rounds) = seminaive_from(old_closure, &inserted, |total, delta| {
            let mut out = compose(delta, total);
            out.absorb(&compose(total, delta));
            out
        });
        let mut new_edges = chain(3);
        new_edges.absorb(&inserted);
        let scratch = seminaive(&new_edges, |_, delta| compose(delta, &new_edges));
        assert_eq!(warm, scratch);
        assert!(rounds >= 1);
    }

    #[test]
    fn seminaive_store_reaches_the_same_fixpoint_incrementally() {
        // T(x,z) :- T(x,y), T(y,z) over a store, from scratch vs. warm.
        let step = |total: &RelationStore, delta: &RelationStore| {
            let t = &total["T"];
            let d = &delta["T"];
            let mut out = compose(d, t);
            out.absorb(&compose(t, d));
            let mut derived = RelationStore::new();
            derived.insert("T".to_string(), out);
            derived
        };
        let mut scratch = RelationStore::new();
        let mut seed = RelationStore::new();
        seed.insert("T".to_string(), chain(4));
        seminaive_store(&mut scratch, seed, step);

        let mut warm = RelationStore::new();
        let mut first = RelationStore::new();
        first.insert("T".to_string(), chain(3));
        seminaive_store(&mut warm, first, step);
        let mut second = RelationStore::new();
        second.insert("T".to_string(), Relation::from_pairs(vec![(a(2), a(3))]));
        let rounds = seminaive_store(&mut warm, second, step);
        assert_eq!(warm["T"], scratch["T"]);
        assert!(rounds >= 1);
    }

    #[test]
    fn seminaive_store_ignores_empty_seeds() {
        let mut total = RelationStore::new();
        total.insert("T".to_string(), chain(3));
        let mut seed = RelationStore::new();
        seed.insert("T".to_string(), Relation::empty(2));
        let rounds = seminaive_store(&mut total, seed, |_, _| {
            panic!("step must not run on an empty seed")
        });
        assert_eq!(rounds, 0);
    }

    #[test]
    fn bounded_loop_counts_rounds_and_enforces_the_budget() {
        let mut n = 0;
        let rounds = bounded_loop::<()>(
            10,
            || {
                n += 1;
                Ok(n < 4)
            },
            |_| (),
        )
        .unwrap();
        assert_eq!(rounds, 3);
        let err = bounded_loop(3, || Ok::<bool, u64>(true), |limit| limit).unwrap_err();
        assert_eq!(err, 3);
    }
}
