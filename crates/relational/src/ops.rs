//! Classical relational-algebra operators specialised to flat [`Relation`]s.
//!
//! These are the building blocks of the baseline algorithms (fixpoint, Datalog,
//! while-programs) against which the complex-object queries are benchmarked.

use crate::relation::Relation;
use itq_object::Atom;
use std::collections::HashMap;

/// Project a relation onto the given 1-based coordinates.
pub fn project(rel: &Relation, coords: &[usize]) -> Relation {
    let mut out = Relation::empty(coords.len().max(1));
    if coords.is_empty() {
        return out;
    }
    for t in rel.iter() {
        let projected: Vec<Atom> = coords.iter().map(|&c| t[c - 1]).collect();
        out.insert(projected);
    }
    out
}

/// Select the tuples whose `coord`-th component equals `value`.
pub fn select_const(rel: &Relation, coord: usize, value: Atom) -> Relation {
    Relation::from_tuples(
        rel.arity(),
        rel.iter().filter(|t| t[coord - 1] == value).cloned(),
    )
}

/// Select the tuples whose two coordinates are equal.
pub fn select_eq(rel: &Relation, coord_a: usize, coord_b: usize) -> Relation {
    Relation::from_tuples(
        rel.arity(),
        rel.iter()
            .filter(|t| t[coord_a - 1] == t[coord_b - 1])
            .cloned(),
    )
}

/// Cartesian product (tuple concatenation).
pub fn product(left: &Relation, right: &Relation) -> Relation {
    let mut out = Relation::empty(left.arity() + right.arity());
    for l in left.iter() {
        for r in right.iter() {
            let mut t = l.clone();
            t.extend_from_slice(r);
            out.insert(t);
        }
    }
    out
}

/// Equi-join: combine tuples of `left` and `right` where
/// `left[left_coord] = right[right_coord]`, keeping all columns of both sides
/// (a hash join on the join key).
pub fn equi_join(
    left: &Relation,
    left_coord: usize,
    right: &Relation,
    right_coord: usize,
) -> Relation {
    let mut index: HashMap<Atom, Vec<&Vec<Atom>>> = HashMap::new();
    for r in right.iter() {
        index.entry(r[right_coord - 1]).or_default().push(r);
    }
    let mut out = Relation::empty(left.arity() + right.arity());
    for l in left.iter() {
        if let Some(matches) = index.get(&l[left_coord - 1]) {
            for r in matches {
                let mut t = l.clone();
                t.extend_from_slice(r);
                out.insert(t);
            }
        }
    }
    out
}

/// Compose two binary relations: `{(a, c) | ∃b. (a,b) ∈ left ∧ (b,c) ∈ right}` —
/// the join-then-project at the heart of transitive closure.
pub fn compose(left: &Relation, right: &Relation) -> Relation {
    assert_eq!(left.arity(), 2);
    assert_eq!(right.arity(), 2);
    let joined = equi_join(left, 2, right, 1);
    project(&joined, &[1, 4])
}

/// The identity (diagonal) relation over a set of atoms.
pub fn diagonal<I: IntoIterator<Item = Atom>>(atoms: I) -> Relation {
    Relation::from_pairs(atoms.into_iter().map(|a| (a, a)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Atom {
        Atom(n)
    }

    fn edges() -> Relation {
        Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2)), (a(2), a(0))])
    }

    #[test]
    fn projection_and_selection() {
        let r = edges();
        let firsts = project(&r, &[1]);
        assert_eq!(firsts.arity(), 1);
        assert_eq!(firsts.len(), 3);
        let swapped = project(&r, &[2, 1]);
        assert!(swapped.contains(&[a(1), a(0)]));
        assert!(project(&r, &[]).is_empty());

        let from_zero = select_const(&r, 1, a(0));
        assert_eq!(from_zero.len(), 1);
        let loops = select_eq(&r, 1, 2);
        assert!(loops.is_empty());
        let with_loop = r.union(&Relation::from_pairs(vec![(a(3), a(3))]));
        assert_eq!(select_eq(&with_loop, 1, 2).len(), 1);
    }

    #[test]
    fn product_and_join() {
        let r = edges();
        let s = Relation::from_atoms(vec![a(0), a(1)]);
        let p = product(&r, &s);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.len(), 6);

        let j = equi_join(&r, 2, &r, 1);
        assert_eq!(j.arity(), 4);
        // (0,1)⋈(1,2), (1,2)⋈(2,0), (2,0)⋈(0,1)
        assert_eq!(j.len(), 3);
        assert!(j.contains(&[a(0), a(1), a(1), a(2)]));
    }

    #[test]
    fn compose_is_relational_composition() {
        let r = edges();
        let two_step = compose(&r, &r);
        assert_eq!(
            two_step,
            Relation::from_pairs(vec![(a(0), a(2)), (a(1), a(0)), (a(2), a(1))])
        );
    }

    #[test]
    fn diagonal_relation() {
        let d = diagonal(vec![a(0), a(1)]);
        assert_eq!(d.len(), 2);
        assert!(d.contains(&[a(1), a(1)]));
        // Composing with the diagonal is the identity.
        let r = edges();
        assert_eq!(compose(&r, &diagonal(r.active_domain())), r);
    }
}
