//! Positive Datalog with semi-naive evaluation.
//!
//! The paper situates `CALC_{0,1}` relative to DATALOG¬ (stratified Datalog) and
//! the fixpoint queries; this module provides the positive-Datalog fixpoint
//! engine used as the polynomial-time baseline in the experiments.  Evaluation is
//! bottom-up and *semi-naive*: each round only fires rules against the facts
//! newly derived in the previous round.

use crate::relation::Relation;
use itq_object::Atom as Constant;
use std::collections::BTreeMap;
use std::fmt;

/// A term of a Datalog literal: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermPattern {
    /// A named variable.
    Var(String),
    /// A constant atom.
    Const(Constant),
}

impl TermPattern {
    /// A variable term.
    pub fn var(name: &str) -> TermPattern {
        TermPattern::Var(name.to_string())
    }

    /// A constant term.
    pub fn constant(c: Constant) -> TermPattern {
        TermPattern::Const(c)
    }
}

/// A Datalog literal `P(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate name.
    pub pred: String,
    /// The argument terms.
    pub terms: Vec<TermPattern>,
}

impl Atom {
    /// Build a literal.
    pub fn new(pred: &str, terms: Vec<TermPattern>) -> Atom {
        Atom {
            pred: pred.to_string(),
            terms,
        }
    }

    /// Build a literal whose arguments are all variables.
    pub fn vars(pred: &str, names: &[&str]) -> Atom {
        Atom::new(pred, names.iter().map(|n| TermPattern::var(n)).collect())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match t {
                TermPattern::Var(v) => write!(f, "{v}")?,
                TermPattern::Const(c) => write!(f, "{c}")?,
            }
        }
        write!(f, ")")
    }
}

/// A Datalog rule `head :- body1, …, bodyn[, x != y, …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head literal (an IDB predicate).
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Atom>,
    /// Disequality constraints `x != y` between body-bound variables — the
    /// fragment needed to lower calculus conjuncts like `¬(x ≈ y)` into a rule.
    pub neq: Vec<(String, String)>,
}

impl Rule {
    /// Build a rule without disequality constraints.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule {
            head,
            body,
            neq: Vec::new(),
        }
    }

    /// Add a disequality constraint `left != right` to the rule.
    pub fn with_neq(mut self, left: &str, right: &str) -> Rule {
        self.neq.push((left.to_string(), right.to_string()));
        self
    }

    /// True if every head and disequality variable occurs in the body (range
    /// restriction — needed for the bottom-up evaluation to be safe).
    pub fn is_range_restricted(&self) -> bool {
        let body_binds = |v: &str| {
            self.body.iter().any(|b| {
                b.terms
                    .iter()
                    .any(|bt| matches!(bt, TermPattern::Var(w) if w == v))
            })
        };
        self.head.terms.iter().all(|t| match t {
            TermPattern::Const(_) => true,
            TermPattern::Var(v) => body_binds(v),
        }) && self
            .neq
            .iter()
            .all(|(left, right)| body_binds(left) && body_binds(right))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        for (left, right) in &self.neq {
            write!(f, ", {left} != {right}")?;
        }
        Ok(())
    }
}

/// A positive Datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules of the program.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build a program from rules.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// True if every rule is range restricted.
    pub fn is_safe(&self) -> bool {
        self.rules.iter().all(Rule::is_range_restricted)
    }

    /// Evaluate the program bottom-up (semi-naive) over the given EDB relations,
    /// returning all IDB (and EDB) relations at the least fixpoint.
    pub fn evaluate(&self, edb: &BTreeMap<String, Relation>) -> BTreeMap<String, Relation> {
        let mut total: BTreeMap<String, Relation> = BTreeMap::new();
        // Make sure every head predicate exists in the store, with its declared
        // arity, even if no facts are ever derived for it.
        for rule in &self.rules {
            total
                .entry(rule.head.pred.clone())
                .or_insert_with(|| Relation::empty(rule.head.terms.len()));
        }
        self.evaluate_delta(&mut total, edb.clone());
        total
    }

    /// Maintain an existing fixpoint under insertion: `total` holds the current
    /// fixpoint (EDB and IDB) and `delta` the freshly inserted facts.  Runs the
    /// shared semi-naive driver until quiescence, absorbing everything newly
    /// derivable into `total`, and returns the number of productive rounds.
    ///
    /// With an empty `total` this *is* from-scratch evaluation; the delta seed
    /// then plays the role of the EDB.  Sound for insertions only — positive
    /// Datalog is monotone, so deletions require re-evaluation.
    pub fn evaluate_delta(
        &self,
        total: &mut BTreeMap<String, Relation>,
        delta: BTreeMap<String, Relation>,
    ) -> u64 {
        crate::fixpoint::seminaive_store(total, delta, |total, delta| self.fire_all(total, delta))
    }

    /// Fire every rule at every delta position once, collecting the derived
    /// facts per head predicate.  Candidates may repeat facts already in
    /// `total`; the fixpoint driver filters them.
    fn fire_all(
        &self,
        total: &BTreeMap<String, Relation>,
        delta: &BTreeMap<String, Relation>,
    ) -> BTreeMap<String, Relation> {
        let mut derived: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in &self.rules {
            // Semi-naive: require at least one body literal to match against
            // the delta from the previous round (on the first round delta is
            // the seed itself, so every rule fires).
            for delta_position in 0..rule.body.len() {
                let out = fire_rule(rule, total, delta, delta_position);
                derived
                    .entry(rule.head.pred.clone())
                    .or_insert_with(|| Relation::empty(rule.head.terms.len()))
                    .absorb(&out);
            }
        }
        derived
    }
}

type Substitution = BTreeMap<String, Constant>;

/// Evaluate one rule with the body literal at `delta_position` matched against
/// the delta store and the remaining literals against the total store.
fn fire_rule(
    rule: &Rule,
    total: &BTreeMap<String, Relation>,
    delta: &BTreeMap<String, Relation>,
    delta_position: usize,
) -> Relation {
    // Nullary heads are legitimate boolean predicates: the 0-ary relation is
    // either empty (false) or contains the single empty tuple (true).
    let arity = rule.head.terms.len();
    let mut out = Relation::empty(arity);
    let mut sub = Substitution::new();
    fire_rec(rule, total, delta, delta_position, 0, &mut sub, &mut out);
    out
}

fn fire_rec(
    rule: &Rule,
    total: &BTreeMap<String, Relation>,
    delta: &BTreeMap<String, Relation>,
    delta_position: usize,
    body_index: usize,
    sub: &mut Substitution,
    out: &mut Relation,
) {
    if body_index == rule.body.len() {
        // Disequality constraints apply once all body variables are bound; an
        // unbound side (unsafe rule) simply never derives.
        for (left, right) in &rule.neq {
            match (sub.get(left), sub.get(right)) {
                (Some(l), Some(r)) if l != r => {}
                _ => return,
            }
        }
        if let Some(tuple) = instantiate(&rule.head, sub) {
            out.insert(tuple);
        }
        return;
    }
    let literal = &rule.body[body_index];
    let store = if body_index == delta_position {
        delta
    } else {
        total
    };
    let Some(relation) = store.get(&literal.pred) else {
        return;
    };
    for tuple in relation.iter() {
        if tuple.len() != literal.terms.len() {
            continue;
        }
        let mut bound: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in literal.terms.iter().zip(tuple) {
            match term {
                TermPattern::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                TermPattern::Var(v) => match sub.get(v) {
                    Some(existing) if existing != value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        sub.insert(v.clone(), *value);
                        bound.push(v.clone());
                    }
                },
            }
        }
        if ok {
            fire_rec(rule, total, delta, delta_position, body_index + 1, sub, out);
        }
        for v in bound {
            sub.remove(&v);
        }
    }
}

fn instantiate(head: &Atom, sub: &Substitution) -> Option<Vec<Constant>> {
    head.terms
        .iter()
        .map(|t| match t {
            TermPattern::Const(c) => Some(*c),
            TermPattern::Var(v) => sub.get(v).copied(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::transitive_closure_seminaive;

    fn a(n: u32) -> Constant {
        Constant(n)
    }

    fn tc_program() -> Program {
        // T(x,y) :- E(x,y).   T(x,z) :- T(x,y), E(y,z).
        Program::new(vec![
            Rule::new(
                Atom::vars("T", &["x", "y"]),
                vec![Atom::vars("E", &["x", "y"])],
            ),
            Rule::new(
                Atom::vars("T", &["x", "z"]),
                vec![Atom::vars("T", &["x", "y"]), Atom::vars("E", &["y", "z"])],
            ),
        ])
    }

    #[test]
    fn transitive_closure_program_matches_direct_algorithm() {
        let edges =
            Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2)), (a(2), a(3)), (a(3), a(1))]);
        let mut edb = BTreeMap::new();
        edb.insert("E".to_string(), edges.clone());
        let result = tc_program().evaluate(&edb);
        assert_eq!(result["T"], transitive_closure_seminaive(&edges));
        // The EDB is untouched.
        assert_eq!(result["E"], edges);
    }

    #[test]
    fn constants_in_rules_filter_derivations() {
        // Reaches0(x) :- T(x, a0): everything that can reach atom 0.
        let mut program = tc_program();
        program.rules.push(Rule::new(
            Atom::new("Reaches0", vec![TermPattern::var("x")]),
            vec![Atom::new(
                "T",
                vec![TermPattern::var("x"), TermPattern::constant(a(0))],
            )],
        ));
        let edges = Relation::from_pairs(vec![(a(1), a(0)), (a(2), a(1)), (a(3), a(4))]);
        let mut edb = BTreeMap::new();
        edb.insert("E".to_string(), edges);
        let result = program.evaluate(&edb);
        let reaches = &result["Reaches0"];
        assert_eq!(reaches.len(), 2);
        assert!(reaches.contains(&[a(1)]));
        assert!(reaches.contains(&[a(2)]));
    }

    #[test]
    fn same_generation_program() {
        // sg(x,y) :- flat(x,y).  sg(x,y) :- up(x,u), sg(u,v), down(v,y).
        let program = Program::new(vec![
            Rule::new(
                Atom::vars("sg", &["x", "y"]),
                vec![Atom::vars("flat", &["x", "y"])],
            ),
            Rule::new(
                Atom::vars("sg", &["x", "y"]),
                vec![
                    Atom::vars("up", &["x", "u"]),
                    Atom::vars("sg", &["u", "v"]),
                    Atom::vars("down", &["v", "y"]),
                ],
            ),
        ]);
        assert!(program.is_safe());
        let mut edb = BTreeMap::new();
        edb.insert(
            "up".to_string(),
            Relation::from_pairs(vec![(a(1), a(3)), (a(2), a(4))]),
        );
        edb.insert("flat".to_string(), Relation::from_pairs(vec![(a(3), a(4))]));
        edb.insert(
            "down".to_string(),
            Relation::from_pairs(vec![(a(4), a(2)), (a(3), a(1))]),
        );
        let result = program.evaluate(&edb);
        let sg = &result["sg"];
        assert!(sg.contains(&[a(3), a(4)]));
        assert!(sg.contains(&[a(1), a(2)]));
        assert_eq!(sg.len(), 2);
    }

    #[test]
    fn unsafe_rules_are_detected() {
        let unsafe_rule = Rule::new(
            Atom::vars("P", &["x", "y"]),
            vec![Atom::vars("E", &["x", "x"])],
        );
        assert!(!unsafe_rule.is_range_restricted());
        assert!(!Program::new(vec![unsafe_rule]).is_safe());
        let safe_with_const = Rule::new(
            Atom::new("P", vec![TermPattern::constant(a(7))]),
            vec![Atom::vars("E", &["x", "y"])],
        );
        assert!(safe_with_const.is_range_restricted());
    }

    #[test]
    fn empty_edb_produces_empty_idb() {
        let mut edb = BTreeMap::new();
        edb.insert("E".to_string(), Relation::empty(2));
        let result = tc_program().evaluate(&edb);
        assert!(result["T"].is_empty());
    }

    #[test]
    fn nullary_heads_act_as_boolean_predicates() {
        // NonEmpty() :- E(x, y): true exactly when E holds at least one tuple.
        // Regression: this used to panic on an arity mismatch because the rule
        // output was forced to arity >= 1.
        let program = Program::new(vec![Rule::new(
            Atom::new("NonEmpty", vec![]),
            vec![Atom::vars("E", &["x", "y"])],
        )]);
        assert!(program.is_safe());
        let mut edb = BTreeMap::new();
        edb.insert("E".to_string(), Relation::from_pairs(vec![(a(0), a(1))]));
        let result = program.evaluate(&edb);
        assert_eq!(result["NonEmpty"].arity(), 0);
        assert_eq!(result["NonEmpty"].len(), 1);
        assert!(result["NonEmpty"].contains(&[]));

        let mut empty = BTreeMap::new();
        empty.insert("E".to_string(), Relation::empty(2));
        let result = program.evaluate(&empty);
        assert!(result["NonEmpty"].is_empty());
    }

    #[test]
    fn disequality_constraints_filter_derivations() {
        // P(x, y) :- E(x, y), x != y.
        let rule = Rule::new(
            Atom::vars("P", &["x", "y"]),
            vec![Atom::vars("E", &["x", "y"])],
        )
        .with_neq("x", "y");
        assert!(rule.is_range_restricted());
        assert_eq!(rule.to_string(), "P(x, y) :- E(x, y), x != y");
        let program = Program::new(vec![rule]);
        let mut edb = BTreeMap::new();
        edb.insert(
            "E".to_string(),
            Relation::from_pairs(vec![(a(0), a(0)), (a(0), a(1))]),
        );
        let result = program.evaluate(&edb);
        assert_eq!(result["P"].len(), 1);
        assert!(result["P"].contains(&[a(0), a(1)]));

        // A disequality over a variable the body never binds is unsafe.
        let dangling = Rule::new(
            Atom::vars("P", &["x", "y"]),
            vec![Atom::vars("E", &["x", "y"])],
        )
        .with_neq("x", "z");
        assert!(!dangling.is_range_restricted());
    }

    #[test]
    fn evaluate_delta_maintains_the_fixpoint_under_insertion() {
        let program = tc_program();
        let edges = Relation::from_pairs(vec![(a(0), a(1)), (a(1), a(2))]);
        let mut total = BTreeMap::new();
        total.insert("T".to_string(), Relation::empty(2));
        let mut seed = BTreeMap::new();
        seed.insert("E".to_string(), edges.clone());
        program.evaluate_delta(&mut total, seed);
        assert_eq!(total["T"], transitive_closure_seminaive(&edges));

        // Insert one edge and maintain the warm fixpoint instead of rerunning.
        let mut delta = BTreeMap::new();
        delta.insert("E".to_string(), Relation::from_pairs(vec![(a(2), a(3))]));
        let rounds = program.evaluate_delta(&mut total, delta);
        assert!(rounds >= 1);
        let mut new_edges = edges.clone();
        new_edges.insert(vec![a(2), a(3)]);
        assert_eq!(total["T"], transitive_closure_seminaive(&new_edges));
    }

    #[test]
    fn display_of_rules() {
        let rule = Rule::new(
            Atom::vars("T", &["x", "z"]),
            vec![Atom::vars("T", &["x", "y"]), Atom::vars("E", &["y", "z"])],
        );
        assert_eq!(rule.to_string(), "T(x, z) :- T(x, y), E(y, z)");
    }
}
