#![forbid(unsafe_code)]

//! # itq-relational — the flat relational substrate and baseline algorithms
//!
//! The paper's primary focus is on queries that map *flat* (relational) databases
//! to flat relations, and several of its reference points — the relational
//! calculus `CALC_{0,0}`, fixpoint queries, DATALOG¬ — live entirely in the
//! relational world.  This crate provides that substrate:
//!
//! * [`Relation`]: a flat relation of fixed arity over atoms, with conversions to
//!   and from the complex-object [`Instance`](itq_object::Instance) model;
//! * [`ops`]: the classical relational-algebra operators specialised to flat
//!   relations (selection, projection, natural/equi-join, union, difference,
//!   product);
//! * [`datalog`]: positive Datalog programs with semi-naive (differential)
//!   evaluation — the fixpoint baseline referenced in Remark 3.6;
//! * [`fixpoint`]: the shared semi-naive loop drivers (from-scratch, warm-start,
//!   and store-wide) that [`tc`], [`datalog`], [`while_loop`], and the engine's
//!   incremental view-refresh path all call;
//! * [`tc`]: three transitive-closure baselines (naive iteration, semi-naive
//!   iteration, Floyd–Warshall) used by experiment E2 against the CALC_{0,1}
//!   powerset query;
//! * [`while_loop`]: an inflationary while-loop evaluator over relational algebra
//!   assignments, the "relational algebra + while" language whose PSPACE
//!   connection the paper cites.

pub mod datalog;
pub mod fixpoint;
pub mod ops;
pub mod relation;
pub mod tc;
pub mod while_loop;

pub use datalog::{Atom as DatalogAtom, Program, Rule, TermPattern};
pub use fixpoint::{
    bounded_loop, seminaive, seminaive_from, seminaive_from_governed, seminaive_store,
    seminaive_store_governed, RelationStore,
};
pub use relation::Relation;
pub use tc::{transitive_closure_naive, transitive_closure_seminaive, transitive_closure_warshall};
pub use while_loop::{RaExpr, Statement, WhileProgram};
