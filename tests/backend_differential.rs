//! Three-way cross-backend differential suite.
//!
//! Random small databases and random *well-typed* algebra expressions are run
//! through every execution path the engine now has:
//!
//! 1. **planned algebra** — the set-at-a-time physical plan (hash/member
//!    joins, pushed-down selections, fused projections) over interned values;
//! 2. **tuple-at-a-time algebra** — the direct `AlgExpr::eval` evaluator;
//! 3. **the Theorem 3.8 calculus route** — the expression's `CALC_{k,i}`
//!    translation, itself executed through *both* calculus backends (the
//!    compiled slot evaluator and the legacy tree walker).
//!
//! The contract, checked under default and tiny budgets and under all three
//! semantics of the prepared pipeline:
//!
//! * the two algebra paths are **byte-identical**: same answers, same
//!   [`AlgError`] classification (budget messages included);
//! * the two calculus paths are byte-identical to each other (extending
//!   `tests/compiled_equivalence.rs` to translated queries);
//! * whenever an algebra path and a calculus path both succeed, their answers
//!   coincide (Theorem 3.8 + planner correctness) — the budgets themselves
//!   are language-specific, so a powerset the algebra materialises directly
//!   may exhaust the calculus quantifier budget, and only the *answers* are
//!   comparable across the language boundary;
//! * `Prepared::execute` outcomes (answers, boundedness flags, defining /
//!   stabilisation levels, error classification) agree across planner-on,
//!   planner-off, and tree-walker engines for every semantics, and each
//!   backend's statistics keep their shape (planner counters zero off the
//!   planned path, calculus counters zero on the algebra paths).

use itq_algebra::EvalConfig as AlgConfig;
use itq_algebra::{plan, to_calculus_query, AlgExpr, SelFormula, SelTerm};
use itq_calculus::compile::compile;
use itq_core::prelude::*;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::single("PAR", Type::flat_tuple(2)).with("PERSON", Type::Atomic)
}

/// Databases over at most three atoms: large enough to exercise joins and
/// powersets, small enough that the translated calculus queries (whose
/// quantifier domains reach 2^(n²)) stay affordable for the tree walker.
fn small_db() -> BoxedStrategy<Database> {
    (
        proptest::collection::vec((0u32..3, 0u32..3), 0..5),
        proptest::collection::vec(0u32..3, 0..4),
    )
        .prop_map(|(edges, people)| {
            let pairs: Vec<(Atom, Atom)> =
                edges.into_iter().map(|(a, b)| (Atom(a), Atom(b))).collect();
            Database::single("PAR", Instance::from_pairs(pairs))
                .with("PERSON", Instance::from_atoms(people.into_iter().map(Atom)))
        })
        .boxed()
}

/// A deterministic well-typed selection formula for a tuple type, chosen by
/// `arg`: coordinate equalities between equally-typed coordinates, membership
/// when a set coordinate matches an element coordinate, constant tests on
/// atomic coordinates, and negation/implication wrappers — falling back to ⊤.
fn selection_for(components: &[Type], arg: usize) -> SelFormula {
    let mut eq_pairs = Vec::new();
    let mut in_pairs = Vec::new();
    let mut atomics = Vec::new();
    for (i, ti) in components.iter().enumerate() {
        if *ti == Type::Atomic {
            atomics.push(i + 1);
        }
        for (j, tj) in components.iter().enumerate() {
            if i != j && ti == tj {
                eq_pairs.push((i + 1, j + 1));
            }
            if i != j && tj.element() == Some(ti) {
                in_pairs.push((i + 1, j + 1));
            }
        }
    }
    let pick = |v: &Vec<(usize, usize)>| v[arg / 7 % v.len()];
    match arg % 7 {
        0 | 1 if !eq_pairs.is_empty() => {
            let (i, j) = pick(&eq_pairs);
            SelFormula::coords_eq(i, j)
        }
        2 if !in_pairs.is_empty() => {
            let (i, j) = pick(&in_pairs);
            SelFormula::In(SelTerm::Coord(i), SelTerm::Coord(j))
        }
        3 if !atomics.is_empty() => {
            SelFormula::coord_is(atomics[arg / 7 % atomics.len()], Atom((arg % 3) as u32))
        }
        4 if !eq_pairs.is_empty() => {
            let (i, j) = pick(&eq_pairs);
            SelFormula::negate(SelFormula::coords_eq(i, j))
        }
        5 if eq_pairs.len() >= 2 => {
            let (i, j) = eq_pairs[0];
            let (k, l) = eq_pairs[eq_pairs.len() - 1];
            SelFormula::any(vec![
                SelFormula::coords_eq(i, j),
                SelFormula::negate(SelFormula::coords_eq(k, l)),
            ])
        }
        6 if !eq_pairs.is_empty() && !atomics.is_empty() => {
            let (i, j) = pick(&eq_pairs);
            SelFormula::implies(
                SelFormula::coords_eq(i, j),
                SelFormula::coord_is(atomics[0], Atom((arg % 3) as u32)),
            )
        }
        _ => SelFormula::all(vec![]),
    }
}

/// Build a well-typed expression from an opcode recipe via a typed stack:
/// every opcode either pushes a leaf or transforms the top of the stack, and
/// a transformation is kept only if it type-checks (so generation never
/// rejects and never produces an ill-typed expression).
fn expr_from_recipe(recipe: &[(usize, usize)]) -> AlgExpr {
    let schema = schema();
    let mut stack: Vec<AlgExpr> = vec![AlgExpr::pred("PAR")];
    for &(op, arg) in recipe {
        match op {
            0 => stack.push(AlgExpr::pred("PAR")),
            1 => stack.push(AlgExpr::pred("PERSON")),
            2 => stack.push(AlgExpr::singleton(Atom((arg % 3) as u32))),
            3..=5 => {
                // σ over the top (well-typed by construction; op 5 keeps ⊤
                // selections over tuples too, covering the vacuous-selection
                // edge case).  Selections over non-tuple operands are rejected
                // at plan time now, so the generator never produces them.
                let top = stack.pop().expect("stack never empties");
                match itq_algebra::infer_type(&top, &schema) {
                    Ok(Type::Tuple(components)) => {
                        let formula = selection_for(&components, arg + op);
                        stack.push(top.select(formula));
                    }
                    _ => stack.push(top),
                }
            }
            6 => {
                // π over the top: a deterministic coordinate multiset.
                let top = stack.pop().expect("stack never empties");
                let candidate = match itq_algebra::infer_type(&top, &schema) {
                    Ok(Type::Tuple(components)) => {
                        let w = components.len();
                        let coords: Vec<usize> = match arg % 4 {
                            0 => vec![1],
                            1 => vec![w, 1],
                            2 => (1..=w).rev().collect(),
                            _ => vec![1 + arg % w, 1],
                        };
                        top.clone().project(coords)
                    }
                    _ => top.clone(),
                };
                stack.push(keep_if_typed(candidate, top, &schema));
            }
            7 => {
                // Product of the two topmost (or the top with PAR).
                let b = stack.pop().expect("stack never empties");
                let a = stack.pop().unwrap_or(AlgExpr::pred("PAR"));
                stack.push(a.product(b));
            }
            8 => {
                // A set operator between the top and a same-typed variant.
                let top = stack.pop().expect("stack never empties");
                let twin = match itq_algebra::infer_type(&top, &schema) {
                    Ok(Type::Tuple(components)) => {
                        let coords: Vec<usize> = (1..=components.len()).rev().collect();
                        top.clone().project(coords)
                    }
                    _ => top.clone(),
                };
                let combined = match arg % 3 {
                    0 => top.clone().union(twin),
                    1 => top.clone().intersect(twin),
                    _ => top.clone().diff(twin),
                };
                stack.push(keep_if_typed(combined, top, &schema));
            }
            9 => {
                // Powerset, at most one per expression and only over flat
                // operands: the translated calculus query quantifies over
                // cons_X({T}), which must stay enumerable.
                let top = stack.pop().expect("stack never empties");
                let candidate = top.clone().powerset();
                let small = top.powerset_count() == 0
                    && matches!(
                        itq_algebra::infer_type(&top, &schema),
                        Ok(ty) if ty.set_height() == 0
                    );
                stack.push(if small { candidate } else { top });
            }
            10 => {
                // Collapse (inverse of powerset) where typed.
                let top = stack.pop().expect("stack never empties");
                stack.push(keep_if_typed(top.clone().collapse(), top, &schema));
            }
            _ => {
                // Untuple where typed (width-1 tuples only).
                let top = stack.pop().expect("stack never empties");
                stack.push(keep_if_typed(top.clone().untuple(), top, &schema));
            }
        }
    }
    stack.pop().expect("stack never empties")
}

fn keep_if_typed(candidate: AlgExpr, fallback: AlgExpr, schema: &Schema) -> AlgExpr {
    if itq_algebra::infer_type(&candidate, schema).is_ok() {
        candidate
    } else {
        fallback
    }
}

fn alg_expr() -> BoxedStrategy<AlgExpr> {
    proptest::collection::vec((0usize..12, 0usize..24), 0..8)
        .prop_map(|recipe| expr_from_recipe(&recipe))
        .boxed()
}

/// The two algebra paths must be byte-identical: same answers or the same
/// [`AlgError`] (budget messages included).
fn assert_algebra_paths_agree(expr: &AlgExpr, db: &Database, config: &AlgConfig) {
    let physical = plan(expr, &schema()).expect("generated expressions are well-typed");
    let planned = physical.execute(db, config).map(|(result, _)| result);
    let tuple = expr.eval(db, &schema(), config);
    assert_eq!(planned, tuple, "planned vs tuple-at-a-time on {expr}");
}

/// The Theorem 3.8 route: translate to the calculus and pin the compiled slot
/// evaluator against the tree walker on the translated query; when the
/// calculus and the (already cross-checked) algebra paths both succeed, the
/// answers must coincide across the language boundary.
fn assert_calculus_route_agrees(expr: &AlgExpr, db: &Database) {
    let query = to_calculus_query(expr, &schema()).expect("well-typed expressions translate");
    let capped = EvalConfig {
        max_steps: 500_000,
        ..EvalConfig::default()
    };
    let tree = query.eval_full(db, &capped);
    let fast = compile(&query)
        .expect("translated queries compile")
        .eval_full(db, &capped);
    match (tree, fast) {
        (Ok(tree), Ok(fast)) => {
            assert_eq!(tree.result, fast.result, "calculus backends on {expr}");
            assert_eq!(tree.stats.steps, fast.stats.steps, "{expr}");
            if let Ok(algebra) = expr.eval(db, &schema(), &AlgConfig::default()) {
                assert_eq!(
                    algebra, tree.result,
                    "Theorem 3.8: algebra vs calculus on {expr}"
                );
            }
        }
        (Err(tree), Err(fast)) => assert_eq!(tree, fast, "{expr}"),
        (tree, fast) => panic!("calculus backends disagree on {expr}: {tree:?} vs {fast:?}"),
    }
}

/// The three engines of the differential: planner (the default), the
/// tuple-at-a-time ablation, and the tuple-at-a-time ablation on the legacy
/// tree walker.  All step budgets are capped so pathological draws die on a
/// classified budget error instead of burning minutes.
fn engine_trio() -> [Engine; 3] {
    let capped = EvalConfig {
        max_steps: 500_000,
        ..EvalConfig::default()
    };
    let invention = InventionConfig {
        max_invented: 1,
        eval: capped,
    };
    let planner = Engine::builder()
        .calc_config(capped)
        .invention_config(invention)
        .build();
    let tuple = Engine::builder()
        .calc_config(capped)
        .invention_config(invention)
        .use_algebra_planner(false)
        .build();
    let tree = Engine::builder()
        .calc_config(capped)
        .invention_config(invention)
        .use_algebra_planner(false)
        .use_compiled(false)
        .build();
    [planner, tuple, tree]
}

/// Prepared-pipeline outcomes across the engine trio: answers, flags, levels,
/// and error classification agree; statistics keep their backend shape.
fn assert_prepared_outcomes_agree(expr: &AlgExpr, db: &Database, semantics: Semantics) {
    let engines = engine_trio();
    let outcomes: Vec<Result<QueryOutcome, _>> = engines
        .iter()
        .map(|engine| {
            engine
                .prepare_algebra(expr, &schema())
                .expect("generated expressions prepare")
                .execute(db, semantics)
        })
        .collect();
    let [planner, tuple, tree] = [&outcomes[0], &outcomes[1], &outcomes[2]];
    match (planner, tuple, tree) {
        (Ok(planner), Ok(tuple), Ok(tree)) => {
            for (label, other) in [("tuple", tuple), ("tree-walk", tree)] {
                assert_eq!(
                    planner.result, other.result,
                    "{semantics}: planner vs {label} on {expr}"
                );
                assert_eq!(
                    planner.bounded_approximation, other.bounded_approximation,
                    "{semantics}: flags on {expr}"
                );
                assert_eq!(planner.defined_at, other.defined_at, "{semantics}: {expr}");
                assert_eq!(
                    planner.stabilised_at, other.stabilised_at,
                    "{semantics}: {expr}"
                );
                assert_eq!(planner.semantics, other.semantics);
            }
            if semantics == Semantics::Limited {
                // Stats shape: the algebra paths never touch the calculus
                // counters, and only the planner reports planner counters.
                assert_eq!(planner.stats.steps, 0, "{expr}");
                assert_eq!(tuple.stats.steps, 0, "{expr}");
                assert_eq!(tuple.stats.join_probes, 0, "{expr}");
                assert_eq!(tuple.stats.tuples_materialised, 0, "{expr}");
                assert_eq!(tree.stats.join_probes, 0, "{expr}");
            } else {
                // Invention routes through the calculus form on every engine;
                // planner counters stay zero there.
                for outcome in [planner, tuple, tree] {
                    assert_eq!(outcome.stats.join_probes, 0, "{semantics}: {expr}");
                    assert_eq!(outcome.stats.tuples_materialised, 0, "{semantics}: {expr}");
                }
            }
        }
        (Err(planner), Err(tuple), Err(tree)) => {
            assert_eq!(
                planner, tuple,
                "{semantics}: error classification on {expr}"
            );
            assert_eq!(planner, tree, "{semantics}: error classification on {expr}");
        }
        _ => panic!(
            "{semantics}: backends disagree on {expr}: planner {:?} vs tuple {:?} vs tree {:?}",
            outcomes[0], outcomes[1], outcomes[2]
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Limited interpretation, raw evaluators: planned == tuple-at-a-time,
    /// byte for byte, under the default and a starved budget.
    #[test]
    fn planned_and_tuple_algebra_are_byte_identical(expr in alg_expr(), db in small_db()) {
        assert_algebra_paths_agree(&expr, &db, &AlgConfig::default());
        assert_algebra_paths_agree(&expr, &db, &AlgConfig { max_instance: 16 });
        assert_algebra_paths_agree(&expr, &db, &AlgConfig { max_instance: 2 });
    }

    /// The CALC_{k,i} route of Theorem 3.8: both calculus backends agree on
    /// the translated query, and cross-language answers coincide on success.
    #[test]
    fn theorem_3_8_route_agrees_with_both_calculus_backends(expr in alg_expr(), db in small_db()) {
        assert_calculus_route_agrees(&expr, &db);
    }

    /// The full prepared pipeline across the engine trio, all semantics.
    #[test]
    fn prepared_outcomes_agree_across_the_trio(expr in alg_expr(), db in small_db()) {
        for semantics in Semantics::ALL {
            assert_prepared_outcomes_agree(&expr, &db, semantics);
        }
    }

    /// Tiny algebra budgets: products and powersets die on the same
    /// byte-identical budget error through the whole pipeline.
    #[test]
    fn tiny_budget_errors_classify_identically(expr in alg_expr(), db in small_db()) {
        let tiny = AlgConfig { max_instance: 8 };
        assert_algebra_paths_agree(&expr, &db, &tiny);
        let capped = EvalConfig { max_steps: 500_000, ..EvalConfig::default() };
        let planner = Engine::builder().calc_config(capped).alg_config(tiny).build();
        let tuple = Engine::builder()
            .calc_config(capped)
            .alg_config(tiny)
            .use_algebra_planner(false)
            .build();
        let a = planner
            .prepare_algebra(&expr, &schema())
            .unwrap()
            .execute(&db, Semantics::Limited);
        let b = tuple
            .prepare_algebra(&expr, &schema())
            .unwrap()
            .execute(&db, Semantics::Limited);
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.result, b.result),
            (Err(a), Err(b)) => {
                prop_assert_eq!(&a, &b, "{}", &expr);
                prop_assert_eq!(a.to_string(), b.to_string(), "{}", &expr);
            }
            (a, b) => prop_assert!(false, "budget divergence on {}: {:?} vs {:?}", &expr, a, b),
        }
    }
}

/// Satellite regression: the `Product` budget fires *before* materialisation
/// on every backend, with a byte-identical message — the planned path checks
/// the unfiltered |A|·|B| even though its join would never materialise the
/// product.
#[test]
fn product_budget_error_string_is_byte_identical_across_backends() {
    let expr = AlgExpr::pred("PERSON")
        .product(AlgExpr::pred("PERSON"))
        .select(SelFormula::coords_eq(1, 2));
    let db = Database::single("PAR", Instance::empty()).with(
        "PERSON",
        Instance::from_atoms(vec![Atom(0), Atom(1), Atom(2)]),
    );
    let tiny = AlgConfig { max_instance: 4 };
    let expected = "evaluation budget exceeded: product of 3 × 3 objects (limit 4)";

    // Raw evaluators.
    let tuple_err = expr.eval(&db, &schema(), &tiny).unwrap_err();
    assert_eq!(tuple_err.to_string(), expected);
    let planned_err = plan(&expr, &schema())
        .unwrap()
        .execute(&db, &tiny)
        .unwrap_err();
    assert_eq!(planned_err.to_string(), expected);
    assert_eq!(planned_err, tuple_err);

    // Through `Prepared::execute` on all three engines.
    for (label, engine) in [
        ("planner", Engine::builder().alg_config(tiny).build()),
        (
            "tuple",
            Engine::builder()
                .alg_config(tiny)
                .use_algebra_planner(false)
                .build(),
        ),
        (
            "tree-walk",
            Engine::builder()
                .alg_config(tiny)
                .use_algebra_planner(false)
                .use_compiled(false)
                .build(),
        ),
    ] {
        let err = engine
            .prepare_algebra(&expr, &schema())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap_err();
        assert_eq!(err.to_string(), expected, "{label}");
    }
}

/// The planner visibly beats the product on the grandparent exemplar while
/// returning the identical answer — the micro version of the E14 acceptance.
#[test]
fn grandparent_exemplar_joins_instead_of_scanning_pairs() {
    let expr = AlgExpr::pred("PAR")
        .product(AlgExpr::pred("PAR"))
        .select(SelFormula::coords_eq(2, 3))
        .project(vec![1, 4]);
    let edges: Vec<(Atom, Atom)> = (0..20).map(|i| (Atom(i), Atom(i + 1))).collect();
    let db = Database::single("PAR", Instance::from_pairs(edges)).with("PERSON", Instance::empty());
    let engine = Engine::new();
    let outcome = engine
        .prepare_algebra(&expr, &schema())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap();
    assert_eq!(outcome.result.len(), 19);
    let pairs = 20u64 * 20;
    assert!(
        outcome.stats.join_probes < pairs / 2,
        "{} probes should beat the {} product pairs",
        outcome.stats.join_probes,
        pairs
    );
    let tuple = Engine::builder()
        .use_algebra_planner(false)
        .build()
        .prepare_algebra(&expr, &schema())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap();
    assert_eq!(outcome.result, tuple.result);
}

/// Resource errors are byte-identical across the engine trio, for all three
/// semantics and every deterministic governing condition — the differential
/// contract extended to the resource governor.
#[test]
fn resource_errors_are_byte_identical_across_the_trio() {
    let expr = AlgExpr::pred("PAR")
        .product(AlgExpr::pred("PAR"))
        .select(SelFormula::coords_eq(2, 3))
        .project(vec![1, 4]);
    let db = Database::single(
        "PAR",
        Instance::from_pairs(vec![(Atom(0), Atom(1)), (Atom(1), Atom(2))]),
    )
    .with("PERSON", Instance::empty());
    let trio = |governor: &GovernorConfig| {
        [
            ("planner", Engine::builder()),
            ("tuple", Engine::builder().use_algebra_planner(false)),
            (
                "tree-walk",
                Engine::builder()
                    .use_algebra_planner(false)
                    .use_compiled(false),
            ),
        ]
        .map(|(label, builder)| {
            (
                label,
                builder.max_invented(1).governor(governor.clone()).build(),
            )
        })
    };

    // A zero deadline and an entry-poll cancellation trip every backend with
    // one canonical message each, under every semantics.
    for (governor, expected) in [
        (
            GovernorConfig {
                deadline_millis: Some(0),
                ..GovernorConfig::default()
            },
            "execution deadline of 0 ms exceeded",
        ),
        (
            GovernorConfig {
                trip_after: Some((1, TripKind::Cancel)),
                ..GovernorConfig::default()
            },
            "execution cancelled",
        ),
    ] {
        for semantics in Semantics::ALL {
            for (label, engine) in trio(&governor) {
                let err = engine
                    .prepare_algebra(&expr, &schema())
                    .unwrap()
                    .execute(&db, semantics)
                    .unwrap_err();
                assert!(
                    matches!(err, EngineError::Resource(_)),
                    "{label}/{semantics}: {err}"
                );
                assert_eq!(err.to_string(), expected, "{label}/{semantics}");
            }
        }
    }

    // The memory ceiling governs interned values, so it only trips the
    // interning backends — but trips them with the identical message.  The
    // planned path observes its value store at the masked poll cadence
    // (every `POLL_MASK`+1 work units), so its database must be large enough
    // to reach a poll after interning — *per partition*, since an
    // `ITQ_PARALLELISM` override splits the probe across workers that each
    // poll on their own cadence.
    let ceiling = GovernorConfig {
        memory_ceiling: Some(1),
        ..GovernorConfig::default()
    };
    let expected = "interned values exceeded the configured memory ceiling of 1 bytes";
    let [(_, planner), (_, tuple), (_, tree)] = trio(&ceiling);
    let big_db = Database::single(
        "PAR",
        Instance::from_pairs((0..1200).map(|i| (Atom(i), Atom(i + 1)))),
    )
    .with("PERSON", Instance::empty());
    let planner_err = planner
        .prepare_algebra(&expr, &schema())
        .unwrap()
        .execute(&big_db, Semantics::Limited)
        .unwrap_err();
    assert_eq!(planner_err.to_string(), expected);
    // The compiled calculus route interns through its value store too.
    let compiled_err = Engine::builder()
        .governor(ceiling.clone())
        .build()
        .prepare(&to_calculus_query(&expr, &schema()).unwrap())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap_err();
    assert_eq!(compiled_err.to_string(), expected);
    // Tuple-at-a-time and the tree walker never intern: exact answers.
    let baseline = Engine::builder()
        .use_algebra_planner(false)
        .build()
        .prepare_algebra(&expr, &schema())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap();
    for (label, engine) in [("tuple", tuple), ("tree-walk", tree)] {
        let outcome = engine
            .prepare_algebra(&expr, &schema())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap();
        assert_eq!(outcome.result, baseline.result, "{label}");
    }
}
