//! Tracing is observation, not interference: running a query with a
//! [`CollectingSink`] attached must be byte-identical — same answers, same
//! boundedness flags, same deterministic evaluator counters — to running it
//! plain or through the [`NoopSink`] short-circuit, on every backend and
//! under every semantics.  The collected span tree is then checked against
//! the [`ExecStats`] it claims to annotate: the root's wall clock is the
//! execution's wall clock, and the counter fields tile the stats totals.

use itq_core::prelude::*;
use itq_core::queries;
use itq_trace::{CollectingSink, NoopSink, Span, TraceSink};
use proptest::prelude::*;

/// Parent databases over a handful of atoms: enough to join, small enough
/// for the tree walker and the invention ladder.
fn small_db() -> BoxedStrategy<Database> {
    proptest::collection::vec((0u32..3, 0u32..3), 0..5)
        .prop_map(|edges| {
            let pairs: Vec<(Atom, Atom)> =
                edges.into_iter().map(|(a, b)| (Atom(a), Atom(b))).collect();
            queries::parent_database(&pairs)
        })
        .boxed()
}

/// One of the canonical genealogy queries (all over the PAR schema).
fn query() -> BoxedStrategy<itq_calculus::Query> {
    (0usize..3)
        .prop_map(|i| match i {
            0 => queries::grandparent_query(),
            1 => queries::sibling_query(),
            _ => queries::transitive_closure_query(),
        })
        .boxed()
}

/// The compiled slot evaluator (default) and the legacy tree walker, both
/// with a tight invention bound and a capped step budget so pathological
/// draws die on a classified error instead of burning minutes.  Pinned to
/// `parallelism(1)`: the span-shape assertions below describe the sequential
/// compiled tree (per-slot children carrying `draws`), which an
/// `ITQ_PARALLELISM` override would replace with partition spans.  The
/// partition grammar is pinned separately in
/// [`recorded_spans_render_with_the_pinned_grammar`].
fn engines() -> [(&'static str, Engine); 2] {
    let capped = EvalConfig {
        max_steps: 500_000,
        ..EvalConfig::default()
    };
    let invention = InventionConfig {
        max_invented: 1,
        eval: capped,
    };
    [
        (
            "compiled",
            Engine::builder()
                .parallelism(1)
                .calc_config(capped)
                .invention_config(invention)
                .build(),
        ),
        (
            "tree-walk",
            Engine::builder()
                .parallelism(1)
                .calc_config(capped)
                .invention_config(invention)
                .use_compiled(false)
                .build(),
        ),
    ]
}

/// Execute `prepared` three ways — plain, noop-sink, collecting-sink — and
/// assert the outcomes are byte-identical modulo wall clock (errors
/// included: a budget the plain path exhausts must be exhausted identically
/// under tracing).  On success, returns the single span the collecting sink
/// captured, paired with the traced outcome.
fn execute_three_ways(
    prepared: &Prepared,
    db: &Database,
    semantics: Semantics,
    label: &str,
) -> Option<(QueryOutcome, Span)> {
    let plain = prepared.execute(db, semantics);
    let noop = prepared.execute_with_sink(db, semantics, &NoopSink);
    let sink = CollectingSink::new();
    let traced = prepared.execute_with_sink(db, semantics, &sink);
    match (plain, noop, traced) {
        (Ok(plain), Ok(noop), Ok(traced)) => {
            for (arm, other) in [("noop", &noop), ("collecting", &traced)] {
                assert_eq!(plain.result, other.result, "{label}/{semantics}/{arm}");
                assert_eq!(
                    plain.bounded_approximation, other.bounded_approximation,
                    "{label}/{semantics}/{arm}"
                );
                assert_eq!(
                    plain.defined_at, other.defined_at,
                    "{label}/{semantics}/{arm}"
                );
                assert_eq!(
                    plain.stabilised_at, other.stabilised_at,
                    "{label}/{semantics}/{arm}"
                );
                assert_eq!(
                    plain.stats.deterministic(),
                    other.stats.deterministic(),
                    "{label}/{semantics}/{arm}"
                );
            }
            let mut spans = sink.take();
            assert_eq!(
                spans.len(),
                1,
                "{label}/{semantics}: one root span per execution"
            );
            Some((traced, spans.pop().unwrap()))
        }
        (Err(plain), Err(noop), Err(traced)) => {
            assert_eq!(plain, noop, "{label}/{semantics}: noop error");
            assert_eq!(plain, traced, "{label}/{semantics}: collecting error");
            None
        }
        (plain, noop, traced) => panic!(
            "{label}/{semantics}: sinks disagree on success: \
             plain {plain:?} vs noop {noop:?} vs collecting {traced:?}"
        ),
    }
}

/// The span tree must agree with the stats block it annotates.
fn assert_span_matches_stats(outcome: &QueryOutcome, span: &Span, label: &str) {
    let stats = &outcome.stats;
    assert_eq!(span.wall_micros, stats.wall_micros, "{label}: root wall");
    match span.name.as_str() {
        "compiled-eval" => {
            assert_eq!(
                span.subtree_total("draws"),
                stats.quantifier_values,
                "{label}: per-slot draws tile the quantifier total"
            );
            assert_eq!(span.field("steps"), Some(stats.steps), "{label}");
        }
        "tree-walk" => {
            assert_eq!(span.field("steps"), Some(stats.steps), "{label}");
            assert_eq!(
                span.field("rows_out"),
                Some(outcome.result.len() as u64),
                "{label}"
            );
        }
        "finite-invention" | "terminal-invention" => {
            assert_eq!(
                span.children.len(),
                stats.invention_levels as usize,
                "{label}: one child span per invention level"
            );
            assert_eq!(
                span.subtree_total("steps"),
                stats.steps,
                "{label}: per-level steps tile the total"
            );
        }
        other => panic!("{label}: unexpected root span `{other}`"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Collecting vs Noop vs plain on both calculus backends, all semantics.
    #[test]
    fn tracing_never_changes_calculus_outcomes(q in query(), db in small_db()) {
        for (label, engine) in engines() {
            let prepared = engine.prepare(&q).unwrap();
            for semantics in Semantics::ALL {
                if let Some((outcome, span)) = execute_three_ways(&prepared, &db, semantics, label) {
                    assert_span_matches_stats(&outcome, &span, label);
                }
            }
        }
    }
}

/// The algebra backends through the same three-way harness: the planned
/// executor's operator tree and the tuple-at-a-time root span both annotate
/// the identical answer, and the planned tree's counter fields tile the
/// planner stats.
#[test]
fn tracing_never_changes_algebra_outcomes() {
    let expr = itq_algebra::AlgExpr::pred("PAR")
        .product(itq_algebra::AlgExpr::pred("PAR"))
        .select(itq_algebra::SelFormula::coords_eq(2, 3))
        .project(vec![1, 4]);
    let schema = queries::parent_schema();
    let edges: Vec<(Atom, Atom)> = (0..12).map(|i| (Atom(i), Atom(i + 1))).collect();
    let db = queries::parent_database(&edges);
    for (label, engine) in [
        ("planner", Engine::new()),
        (
            "tuple",
            Engine::builder().use_algebra_planner(false).build(),
        ),
    ] {
        let prepared = engine.prepare_algebra(&expr, &schema).unwrap();
        let (outcome, span) =
            execute_three_ways(&prepared, &db, Semantics::Limited, label).expect("in budget");
        assert_eq!(outcome.result.len(), 11, "{label}");
        assert_eq!(
            span.field("rows_out"),
            Some(outcome.result.len() as u64),
            "{label}"
        );
        match span.name.as_str() {
            "planned-algebra" => {
                assert_eq!(
                    span.subtree_total("join_probes"),
                    outcome.stats.join_probes,
                    "per-operator probes tile the planner total"
                );
                assert_eq!(
                    span.subtree_total("tuples_materialised"),
                    outcome.stats.tuples_materialised,
                    "per-operator materialisation tiles the planner total"
                );
                assert!(
                    span.children[0].name.starts_with("hash-join"),
                    "fused σ∘× renders as a join: {}",
                    span.children[0].name
                );
            }
            "tuple-algebra" => assert!(span.children.is_empty()),
            other => panic!("{label}: unexpected root span `{other}`"),
        }
    }
}

/// A sink that claims to be enabled still sees nothing it should not: the
/// recorded root span renders with the pinned `name (fields, µs)` grammar,
/// so downstream log scrapers can rely on the format.
#[test]
fn recorded_spans_render_with_the_pinned_grammar() {
    let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);

    // Sequential compiled tree: per-slot children.
    let engine = Engine::builder().parallelism(1).build();
    let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    let sink = CollectingSink::new();
    assert!(sink.is_enabled());
    let _ = prepared
        .execute_with_sink(&db, Semantics::Limited, &sink)
        .unwrap();
    let span = sink.take().pop().unwrap();
    let rendered = span.to_string();
    let first = rendered.lines().next().unwrap();
    assert!(
        first.starts_with("compiled-eval  (") && first.ends_with("µs)"),
        "pinned grammar violated: {first}"
    );
    assert!(rendered.contains("└─ quantifier slot"), "{rendered}");

    // Parallel compiled tree: the slot children give way to one child span
    // per partition, each carrying its rank tile — same root grammar.
    let engine = Engine::builder().parallelism(4).build();
    let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    let sink = CollectingSink::new();
    let outcome = prepared
        .execute_with_sink(&db, Semantics::Limited, &sink)
        .unwrap();
    assert!(outcome.stats.partitions > 0, "parallel path engaged");
    let span = sink.take().pop().unwrap();
    let rendered = span.to_string();
    let first = rendered.lines().next().unwrap();
    assert!(
        first.starts_with("compiled-eval  (") && first.ends_with("µs)"),
        "pinned grammar violated: {first}"
    );
    assert!(
        rendered.contains("├─ partition 0  (rank_start 0,"),
        "{rendered}"
    );
    assert!(rendered.contains("└─ partition 3"), "{rendered}");
    assert!(
        !rendered.contains("quantifier slot"),
        "partitioned runs replace slot spans: {rendered}"
    );
}
