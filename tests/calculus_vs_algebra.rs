//! Cross-crate integration tests for the calculus ↔ algebra correspondence
//! (Theorem 3.8): algebra expressions and their calculus translations agree on
//! randomly generated databases, and the intermediate-type classification is
//! preserved by the translation.

use itq_algebra::{classify_expr, to_calculus_query, AlgExpr, EvalConfig as AlgConfig, SelFormula};
use itq_calculus::eval::EvalConfig;
use itq_object::{Atom, Database, Instance, Schema, Type};
use itq_workloads::graphs::random_digraph;

fn schema() -> Schema {
    Schema::single("PAR", Type::flat_tuple(2)).with("PERSON", Type::Atomic)
}

fn database(seed: u64, nodes: u32, density: f64) -> Database {
    let edges = random_digraph(nodes, density, seed);
    let people: Vec<Atom> = (0..nodes).map(Atom).collect();
    Database::single("PAR", Instance::from_pairs(edges))
        .with("PERSON", Instance::from_atoms(people))
}

/// A collection of algebra expressions covering every operator.
fn expression_zoo() -> Vec<AlgExpr> {
    vec![
        AlgExpr::pred("PAR"),
        AlgExpr::pred("PERSON"),
        AlgExpr::singleton(Atom(0)),
        AlgExpr::pred("PAR").union(AlgExpr::pred("PAR").project(vec![2, 1])),
        AlgExpr::pred("PAR").intersect(AlgExpr::pred("PAR").project(vec![2, 1])),
        AlgExpr::pred("PAR").diff(AlgExpr::pred("PAR").project(vec![2, 1])),
        AlgExpr::pred("PAR")
            .product(AlgExpr::pred("PAR"))
            .select(SelFormula::coords_eq(2, 3))
            .project(vec![1, 4]),
        AlgExpr::pred("PAR").select(SelFormula::coords_eq(1, 2)),
        AlgExpr::pred("PAR").select(SelFormula::coord_is(1, Atom(0))),
        AlgExpr::pred("PAR").project(vec![1]).untuple(),
        AlgExpr::pred("PERSON").product(AlgExpr::pred("PERSON")),
        AlgExpr::pred("PAR")
            .select(SelFormula::coord_is(1, Atom(0)))
            .powerset(),
        AlgExpr::pred("PAR")
            .select(SelFormula::coord_is(1, Atom(0)))
            .powerset()
            .collapse(),
        AlgExpr::pred("PERSON").diff(AlgExpr::pred("PAR").project(vec![1]).untuple()),
    ]
}

#[test]
fn algebra_and_translated_calculus_agree_on_random_databases() {
    let alg_config = AlgConfig::default();
    let calc_config = EvalConfig::default();
    for seed in 0..3u64 {
        // Three-atom databases keep the translated powerset queries (whose
        // quantifier domains are 2^(n²)) fast enough for an exhaustive check.
        let db = database(seed, 3, 0.4);
        for expr in expression_zoo() {
            let algebra_answer = expr.eval(&db, &schema(), &alg_config).unwrap();
            let query = to_calculus_query(&expr, &schema()).unwrap();
            let calculus_answer = query.eval(&db, &calc_config).unwrap();
            assert_eq!(
                algebra_answer, calculus_answer,
                "seed {seed}, expression {expr}"
            );
        }
    }
}

#[test]
fn prepared_algebra_handles_agree_with_both_direct_paths() {
    // The pipeline's algebra handles hold both forms: limited execution runs
    // the algebra directly, while the compiled calculus (made once at prepare
    // time) is what classification and invention use — and the two agree.
    let engine = itq_core::prelude::Engine::new();
    let db = database(11, 3, 0.4);
    for expr in expression_zoo() {
        let prepared = engine.prepare_algebra(&expr, &schema()).unwrap();
        let outcome = prepared
            .execute(&db, itq_core::prelude::Semantics::Limited)
            .unwrap();
        let direct_algebra = expr.eval(&db, &schema(), &AlgConfig::default()).unwrap();
        let direct_calculus = prepared.query().eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(outcome.result, direct_algebra, "expression {expr}");
        assert_eq!(outcome.result, direct_calculus, "expression {expr}");
    }
}

#[test]
fn translation_preserves_minimal_class_for_the_zoo() {
    for expr in expression_zoo() {
        let alg_class = classify_expr(&expr, &schema()).unwrap();
        let query = to_calculus_query(&expr, &schema()).unwrap();
        let calc_class = query.classification();
        // The translation introduces one variable per subexpression, so the
        // calculus intermediate heights match the algebra's exactly.
        assert_eq!(
            alg_class.minimal_class, calc_class.minimal_class,
            "expression {expr}"
        );
    }
}

#[test]
fn empty_databases_are_handled_uniformly() {
    let db = Database::single("PAR", Instance::empty()).with("PERSON", Instance::empty());
    for expr in expression_zoo() {
        let algebra_answer = expr.eval(&db, &schema(), &AlgConfig::default()).unwrap();
        let query = to_calculus_query(&expr, &schema()).unwrap();
        let calculus_answer = query.eval(&db, &EvalConfig::default()).unwrap();
        assert_eq!(algebra_answer, calculus_answer, "expression {expr}");
    }
}

#[test]
fn powerset_blowup_is_reported_consistently() {
    // On a larger database the powerset expression exceeds the algebra budget and
    // the corresponding calculus query exceeds the candidate budget.
    let db = database(7, 6, 0.8);
    let expr = AlgExpr::pred("PAR").powerset();
    let tiny_alg = AlgConfig { max_instance: 64 };
    assert!(expr.eval(&db, &schema(), &tiny_alg).is_err());
    let query = to_calculus_query(&expr, &schema()).unwrap();
    let tiny_calc = EvalConfig {
        max_candidates: 64,
        ..EvalConfig::default()
    };
    assert!(query.eval(&db, &tiny_calc).is_err());
}
