//! Equivalence suite for the compiled slot-based evaluator: on randomly
//! generated well-typed queries and databases, `eval_compiled` must be
//! bit-identical to the tree walker — same answers, same shared statistics
//! counters, and the same budget-error classification — and a `Prepared`
//! handle must produce the same [`QueryOutcome`] whether the engine routes
//! through the compiled backend (the default) or the legacy tree walker
//! (`EngineBuilder::use_compiled(false)`), under all three semantics.
//!
//! The suite also pins the domain-cache invalidation contract: the invention
//! semantics extend the atom set per level, and a domain memoized over `X`
//! must never be reused for `X ∪ {fresh}` (changed atom set ⇒ changed
//! `cons_X`).

use itq_calculus::compile::compile;
use itq_calculus::CalcError;
use itq_core::prelude::*;
use itq_core::queries;
use itq_invention::eval_with_invented;
use proptest::prelude::*;

/// Compare one evaluation through both backends: identical answers and
/// shared statistics on success, identical error classification on failure.
fn assert_backends_agree(query: &Query, db: &Database, config: &EvalConfig) {
    let compiled = compile(query).expect("validated queries always compile");
    let slow = query.eval_full(db, config);
    let fast = compiled.eval_full(db, config);
    match (slow, fast) {
        (Ok(slow), Ok(fast)) => {
            assert_eq!(slow.result, fast.result, "answers diverge");
            assert_eq!(slow.stats.steps, fast.stats.steps, "step counts diverge");
            assert_eq!(
                slow.stats.quantifier_values, fast.stats.quantifier_values,
                "quantifier draws diverge"
            );
            assert_eq!(
                slow.stats.candidates_checked, fast.stats.candidates_checked,
                "candidate counts diverge"
            );
            assert_eq!(
                slow.stats.max_domain_seen, fast.stats.max_domain_seen,
                "domain maxima diverge"
            );
        }
        (Err(slow), Err(fast)) => {
            assert_eq!(slow, fast, "error classification diverges");
        }
        (slow, fast) => panic!("backends disagree: tree {slow:?} vs compiled {fast:?}"),
    }
}

/// The two engines of the ablation: identical configuration except for the
/// evaluation backend.
fn engine_pair() -> (Engine, Engine) {
    let compiled = Engine::builder().max_invented(1).build();
    let legacy = Engine::builder()
        .max_invented(1)
        .use_compiled(false)
        .build();
    (compiled, legacy)
}

/// Compare a `Prepared::execute` outcome between two backend-ablated engines.
fn assert_outcomes_agree_on(
    engines: &(Engine, Engine),
    query: &Query,
    db: &Database,
    semantics: Semantics,
) {
    let (compiled, legacy) = engines;
    let fast = compiled.prepare(query).unwrap().execute(db, semantics);
    let slow = legacy.prepare(query).unwrap().execute(db, semantics);
    match (slow, fast) {
        (Ok(slow), Ok(fast)) => {
            assert_eq!(slow.result, fast.result, "{semantics}: answers diverge");
            assert_eq!(slow.semantics, fast.semantics);
            assert_eq!(
                slow.bounded_approximation, fast.bounded_approximation,
                "{semantics}: boundedness flags diverge"
            );
            assert_eq!(slow.defined_at, fast.defined_at, "{semantics}");
            assert_eq!(slow.stabilised_at, fast.stabilised_at, "{semantics}");
            assert_eq!(slow.stats.steps, fast.stats.steps, "{semantics}");
            assert_eq!(
                slow.stats.quantifier_values, fast.stats.quantifier_values,
                "{semantics}"
            );
            assert_eq!(
                slow.stats.candidates_checked, fast.stats.candidates_checked,
                "{semantics}"
            );
            assert_eq!(
                slow.stats.max_domain_seen, fast.stats.max_domain_seen,
                "{semantics}"
            );
            assert_eq!(
                slow.stats.invention_levels, fast.stats.invention_levels,
                "{semantics}"
            );
        }
        (Err(slow), Err(fast)) => assert_eq!(slow, fast, "{semantics}"),
        (slow, fast) => panic!("{semantics}: backends disagree: {slow:?} vs {fast:?}"),
    }
}

#[test]
fn exemplar_workloads_agree_under_all_semantics() {
    let engines = engine_pair();
    for (name, query, db) in queries::exemplar_workloads() {
        for semantics in Semantics::ALL {
            assert_outcomes_agree_on(&engines, &query, &db, semantics);
        }
        // Limited evaluation is also pinned at the raw-evaluator level.
        assert_backends_agree(&query, &db, &EvalConfig::default());
        let _ = name;
    }
}

/// `{t/U | R(t) ∧ ∃y/U ¬R(y)}` — empty under the limited interpretation,
/// full once one invented atom provides the witness.  Used to prove the
/// domain cache is per-atom-set: a stale level-0 `U` domain would make the
/// level-1 witness search fail.
fn needs_external_witness() -> Query {
    Query::new(
        "t",
        Type::Atomic,
        Formula::and(vec![
            Formula::pred("R", Term::var("t")),
            Formula::exists(
                "y",
                Type::Atomic,
                Formula::not(Formula::pred("R", Term::var("y"))),
            ),
        ]),
        Schema::single("R", Type::Atomic),
    )
    .unwrap()
}

#[test]
fn invention_invalidates_the_domain_cache_when_scratch_atoms_arrive() {
    let query = needs_external_witness();
    let compiled = compile(&query).unwrap();
    let db = Database::single("R", Instance::from_atoms(vec![Atom(0), Atom(1)]));
    let config = EvalConfig::default();

    // Level by level through the compiled form: the level-0 atom set has no
    // witness, level 1 must see a quantifier domain that *contains* the fresh
    // atom — which can only happen if cons_X(U) was rebuilt for the extended
    // atom set rather than replayed from a stale memo.
    let mut universe = Universe::new();
    let (level0, eval0) = eval_with_invented(&compiled, &db, &mut universe, 0, &config).unwrap();
    assert!(level0.is_empty(), "no witness without invention");
    assert_eq!(eval0.stats.max_domain_seen, 2);
    let (level1, eval1) = eval_with_invented(&compiled, &db, &mut universe, 1, &config).unwrap();
    assert_eq!(level1.len(), 2, "one invented value provides the witness");
    assert_eq!(
        eval1.stats.max_domain_seen, 3,
        "the quantifier domain grew with the scratch atom"
    );

    // The full pipeline agrees with the legacy backend end to end.
    let engines = engine_pair();
    for semantics in Semantics::ALL {
        assert_outcomes_agree_on(&engines, &query, &db, semantics);
    }
    // With the default invention bound the union stabilises after level 1 —
    // possible only because each level re-materialised its domains and found
    // the witness the level-0 cache could not contain.
    let outcome = Engine::new()
        .prepare(&query)
        .unwrap()
        .execute(&db, Semantics::FiniteInvention)
        .unwrap();
    assert_eq!(outcome.result.len(), 2);
    assert!(!outcome.bounded_approximation);
    assert_eq!(outcome.stabilised_at, Some(2));
}

#[test]
fn compiled_outcomes_expose_the_cache_counters() {
    let engine = Engine::new();
    let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    let outcome = engine
        .prepare(&queries::grandparent_query())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap();
    assert!(outcome.stats.interned_values > 0);
    assert!(outcome.stats.domain_cache_misses > 0);
    assert!(
        outcome.stats.domain_cache_hits > outcome.stats.domain_cache_misses,
        "repeated quantifier entries must hit the memo"
    );
    // The ablation engine runs the tree walker and reports zeros.
    let legacy = Engine::builder().use_compiled(false).build();
    let slow = legacy
        .prepare(&queries::grandparent_query())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap();
    assert_eq!(slow.stats.domain_cache_hits, 0);
    assert_eq!(slow.stats.domain_cache_misses, 0);
    assert_eq!(slow.stats.interned_values, 0);
}

/// Random well-typed queries: one of the repo's canonical PAR-schema queries
/// with a stack of validity-preserving decorations (arbitrary random formulas
/// are almost never t-wffs, so generation works by construction).  The
/// decorations deliberately include non-short-circuit connectives (`↔`),
/// negation, and closed higher-type quantifiers, so the compiled interpreter
/// is exercised on every formula constructor.
fn par_query() -> BoxedStrategy<Query> {
    let base = (0usize..3).prop_map(|i| match i {
        0 => queries::grandparent_query(),
        1 => queries::sibling_query(),
        _ => queries::transitive_closure_query(),
    });
    (base, proptest::collection::vec(0usize..6, 0..4))
        .prop_map(|(q, decorations)| {
            let mut body = q.body().clone();
            for d in decorations {
                body = match d {
                    0 => Formula::And(vec![body]),
                    1 => Formula::Or(vec![body, Formula::falsity()]),
                    2 => Formula::not(Formula::not(body)),
                    3 => Formula::iff(body, Formula::truth()),
                    4 => Formula::implies(Formula::truth(), body),
                    // A closed quantified conjunct with a set-height-2 type —
                    // the hyper-exponential fragment under a tiny atom set.
                    _ => Formula::And(vec![
                        body,
                        Formula::exists("w", Type::nested_set(2), Formula::truth()),
                    ]),
                };
            }
            q.with_body(body).expect("decorations preserve validity")
        })
        .boxed()
}

/// Small random parent databases (0–4 edges over at most 3 atoms — the
/// transitive-closure query's `∀x/{[U,U]}` domain is `2^(n²)`, so 3 atoms is
/// the largest size where full tree-walk enumeration stays in milliseconds).
fn par_db() -> BoxedStrategy<Database> {
    proptest::collection::vec((0u32..3, 0u32..3), 0..5)
        .prop_map(|edges| {
            let pairs: Vec<(Atom, Atom)> =
                edges.into_iter().map(|(a, b)| (Atom(a), Atom(b))).collect();
            queries::parent_database(&pairs)
        })
        .boxed()
}

/// The naive (no short-circuit) strategy enumerates every domain completely;
/// cap its step budget so pathological draws die on the *same* budget error
/// in both backends instead of burning minutes proving it.
fn capped_naive() -> EvalConfig {
    EvalConfig {
        max_steps: 300_000,
        ..EvalConfig::naive()
    }
}

/// Engines for the property sweep: backend ablation pair with a step cap on
/// every evaluation path (invention levels extend the atom set, and one extra
/// atom can multiply the transitive-closure workload by ~500×).
fn capped_engine_pair() -> (Engine, Engine) {
    let capped = EvalConfig {
        max_steps: 500_000,
        ..EvalConfig::default()
    };
    let invention = InventionConfig {
        max_invented: 1,
        eval: capped,
    };
    let compiled = Engine::builder()
        .calc_config(capped)
        .invention_config(invention)
        .build();
    let legacy = Engine::builder()
        .calc_config(capped)
        .invention_config(invention)
        .use_compiled(false)
        .build();
    (compiled, legacy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Limited interpretation: answers and shared statistics are
    /// bit-identical on arbitrary decorated queries and databases.
    #[test]
    fn eval_compiled_equals_evaluate(q in par_query(), db in par_db()) {
        assert_backends_agree(&q, &db, &EvalConfig::default());
        // The naive (no short-circuit) strategy walks different paths; the
        // backends must track each other there too (step-capped: full
        // enumeration is the whole point of the ablation).
        assert_backends_agree(&q, &db, &capped_naive());
    }

    /// Budget errors classify identically: under tiny budgets many of the
    /// decorated queries die on the candidate, quantifier-domain, or step
    /// budget, and both backends must report the same `CalcError`.
    #[test]
    fn budget_errors_classify_identically(q in par_query(), db in par_db()) {
        assert_backends_agree(&q, &db, &EvalConfig::tiny());
        let step_starved = EvalConfig { max_steps: 7, ..EvalConfig::default() };
        assert_backends_agree(&q, &db, &step_starved);
    }

    /// The full pipeline: a `Prepared` handle produces the same
    /// `QueryOutcome` through either backend under every semantics.
    #[test]
    fn prepared_outcomes_agree_across_backends(q in par_query(), db in par_db()) {
        let engines = capped_engine_pair();
        for semantics in Semantics::ALL {
            assert_outcomes_agree_on(&engines, &q, &db, semantics);
        }
    }
}

#[test]
fn tiny_budget_candidate_error_matches_exactly() {
    // Pin one concrete budget error end to end (not just equality of the two
    // backends, but the exact classification both produce).
    let q = Query::new(
        "t",
        Type::set(Type::flat_tuple(2)),
        Formula::truth(),
        queries::parent_schema(),
    )
    .unwrap();
    let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    let compiled_err = compile(&q)
        .unwrap()
        .eval_full(&db, &EvalConfig::tiny())
        .unwrap_err();
    let tree_err = q.eval_full(&db, &EvalConfig::tiny()).unwrap_err();
    assert_eq!(compiled_err, tree_err);
    assert!(matches!(compiled_err, CalcError::Budget { limit: 64, .. }));
}
