//! Property suite for the surface language: for generated `Term`, `Formula`,
//! `Query`, and `AlgExpr` values, `parse(display(x)) == x` — the parser is the
//! exact inverse of the engine's printers — and parse errors carry the
//! position of the offending token.

use itq_algebra::{AlgExpr, SelFormula, SelTerm};
use itq_calculus::{Formula, Query, Term};
use itq_core::queries;
use itq_object::{Atom, Type};
use itq_surface::{parse_alg_expr, parse_formula, parse_query, parse_term};
use proptest::prelude::*;

/// Variable names that are not reserved (no `a<digits>`, no keywords); the
/// primed and hashed spellings cover the printer's fresh-name output.
const VARS: [&str; 6] = ["x", "y", "z", "t", "s'", "v#0"];

/// Predicate names as the workloads spell them.
const PREDS: [&str; 4] = ["P", "PAR", "PERSON", "R2"];

fn var_name() -> impl Strategy<Value = String> {
    (0usize..VARS.len()).prop_map(|i| VARS[i].to_string())
}

fn pred_name() -> impl Strategy<Value = String> {
    (0usize..PREDS.len()).prop_map(|i| PREDS[i].to_string())
}

fn atom() -> impl Strategy<Value = Atom> {
    (0u32..50).prop_map(Atom)
}

/// Types of set-height ≤ 2 and width ≤ 3, honouring the tuple invariant.
fn ty() -> BoxedStrategy<Type> {
    Just(Type::Atomic)
        .prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Type::set),
                proptest::collection::vec(inner, 1..4).prop_map(Type::tuple),
            ]
        })
        .boxed()
}

fn term() -> BoxedStrategy<Term> {
    prop_oneof![
        atom().prop_map(Term::Const),
        var_name().prop_map(Term::Var),
        (var_name(), 1usize..5).prop_map(|(v, i)| Term::Proj(v, i)),
    ]
    .boxed()
}

/// Arbitrary formulas over every constructor — including the one-element
/// conjunctions/disjunctions whose old rendering could not round-trip.
fn formula() -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        (term(), term()).prop_map(|(a, b)| Formula::Eq(a, b)),
        (term(), term()).prop_map(|(a, b)| Formula::Member(a, b)),
        (pred_name(), term()).prop_map(|(p, t)| Formula::Pred(p, t)),
        Just(Formula::truth()),
        Just(Formula::falsity()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (var_name(), ty(), inner.clone()).prop_map(|(v, t, f)| Formula::Exists(
                v,
                t,
                Box::new(f)
            )),
            (var_name(), ty(), inner).prop_map(|(v, t, f)| Formula::Forall(v, t, Box::new(f))),
        ]
    })
}

fn sel_term() -> BoxedStrategy<SelTerm> {
    prop_oneof![
        (1usize..5).prop_map(SelTerm::Coord),
        atom().prop_map(SelTerm::Const),
    ]
    .boxed()
}

fn sel_formula() -> BoxedStrategy<SelFormula> {
    let leaf = prop_oneof![
        (sel_term(), sel_term()).prop_map(|(a, b)| SelFormula::Eq(a, b)),
        (sel_term(), sel_term()).prop_map(|(a, b)| SelFormula::In(a, b)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(SelFormula::negate),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(SelFormula::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(SelFormula::Or),
            (inner.clone(), inner).prop_map(|(a, b)| SelFormula::implies(a, b)),
        ]
    })
}

fn alg_expr() -> BoxedStrategy<AlgExpr> {
    let leaf = prop_oneof![
        pred_name().prop_map(AlgExpr::Pred),
        atom().prop_map(AlgExpr::Singleton),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.product(b)),
            (proptest::collection::vec(1usize..6, 1..4), inner.clone())
                .prop_map(|(coords, e)| e.project(coords)),
            (sel_formula(), inner.clone()).prop_map(|(f, e)| e.select(f)),
            inner.clone().prop_map(AlgExpr::untuple),
            inner.clone().prop_map(AlgExpr::collapse),
            inner.prop_map(AlgExpr::powerset),
        ]
    })
}

/// Well-typed queries: one of the repo's canonical queries with a random stack
/// of validity-preserving decorations applied to its body.  (Arbitrary random
/// formulas are almost never t-wffs, so `Query` generation works by
/// construction instead.)
fn query() -> BoxedStrategy<Query> {
    let base = (0usize..4).prop_map(|i| match i {
        0 => queries::grandparent_query(),
        1 => queries::sibling_query(),
        2 => queries::transitive_closure_query(),
        _ => queries::even_cardinality_query(),
    });
    (base, proptest::collection::vec(0usize..4, 0..4))
        .prop_map(|(q, decorations)| {
            let mut body = q.body().clone();
            for d in decorations {
                body = match d {
                    // Singleton n-ary wrappers — the printer fix under test.
                    0 => Formula::And(vec![body]),
                    1 => Formula::Or(vec![body]),
                    2 => Formula::not(Formula::not(body)),
                    // A closed quantified conjunct with a type of height 2.
                    _ => Formula::And(vec![
                        body,
                        Formula::exists("w", Type::nested_set(2), Formula::truth()),
                    ]),
                };
            }
            q.with_body(body).expect("decorations preserve validity")
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse ∘ display` is the identity on terms.
    #[test]
    fn term_round_trips(t in term()) {
        prop_assert_eq!(parse_term(&t.to_string()), Ok(t));
    }

    /// `parse ∘ display` is the identity on formulas — every connective,
    /// quantifier, and n-ary arity (including singletons).
    #[test]
    fn formula_round_trips(f in formula()) {
        prop_assert_eq!(parse_formula(&f.to_string()), Ok(f));
    }

    /// `parse ∘ display` is the identity on algebra expressions, selection
    /// formulas included.
    #[test]
    fn alg_expr_round_trips(e in alg_expr()) {
        prop_assert_eq!(parse_alg_expr(&e.to_string()), Ok(e));
    }

    /// `parse ∘ display` is the identity on whole (validated) queries.
    #[test]
    fn query_round_trips(q in query()) {
        let reparsed = parse_query(&q.to_string(), q.schema());
        prop_assert_eq!(reparsed, Ok(q));
    }

    /// Parse errors point at the offending token: appending a stray `)` to a
    /// printed formula fails exactly at the `)` — one past the text, on the
    /// right line — even when the text is shifted to another line and column.
    #[test]
    fn parse_errors_carry_line_and_column(f in formula()) {
        let text = f.to_string();
        let width = text.chars().count();

        let err = parse_formula(&format!("{text} )")).unwrap_err();
        prop_assert_eq!(err.line(), 1);
        prop_assert_eq!(err.column(), width + 2);

        let err = parse_formula(&format!("\n  {text} )")).unwrap_err();
        prop_assert_eq!(err.line(), 2);
        prop_assert_eq!(err.column(), width + 4);
    }

    /// Truncating a printed formula anywhere still reports a position inside
    /// (or just past) the remaining text — errors never point off into space.
    #[test]
    fn parse_errors_stay_in_bounds(f in formula(), cut in 0usize..40) {
        let text = f.to_string();
        let chars: Vec<char> = text.chars().collect();
        let cut = cut.min(chars.len());
        let prefix: String = chars[..cut].iter().collect();
        match parse_formula(&prefix) {
            Ok(_) => {}
            Err(e) => {
                prop_assert_eq!(e.line(), 1);
                prop_assert!(e.column() <= cut + 1, "column {} past cut {}", e.column(), cut);
            }
        }
    }
}
