//! Experiment E2's correctness backbone: the CALC_{0,1} transitive-closure query
//! of Example 3.1 agrees with every polynomial-time baseline (three direct
//! algorithms, the Datalog program, and the while-program) on a spread of graph
//! shapes.

use itq_calculus::eval::EvalConfig;
use itq_core::queries::{parent_database, transitive_closure_query};
use itq_object::Atom;
use itq_relational::datalog::{Atom as DatalogAtom, Program, Rule};
use itq_relational::while_loop::transitive_closure_program;
use itq_relational::{
    transitive_closure_naive, transitive_closure_seminaive, transitive_closure_warshall, Relation,
};
use itq_workloads::graphs::{chain_edges, cycle_edges, random_digraph, tree_edges};
use std::collections::BTreeMap;

fn datalog_tc(edges: &Relation) -> Relation {
    let program = Program::new(vec![
        Rule::new(
            DatalogAtom::vars("T", &["x", "y"]),
            vec![DatalogAtom::vars("E", &["x", "y"])],
        ),
        Rule::new(
            DatalogAtom::vars("T", &["x", "z"]),
            vec![
                DatalogAtom::vars("T", &["x", "y"]),
                DatalogAtom::vars("E", &["y", "z"]),
            ],
        ),
    ]);
    let mut edb = BTreeMap::new();
    edb.insert("E".to_string(), edges.clone());
    program.evaluate(&edb)["T"].clone()
}

fn while_tc(edges: &Relation) -> Relation {
    let mut env = BTreeMap::new();
    env.insert("E".to_string(), edges.clone());
    transitive_closure_program().run(&mut env).unwrap();
    env["T"].clone()
}

/// Workloads kept to three atoms: the CALC_{0,1} query sweeps a 2^(n²)-element
/// quantifier domain, so n = 3 (512 candidate relations) is the largest size that
/// keeps an exhaustive debug-mode test fast; the benchmark harness pushes to
/// n = 4 in release mode.
fn workloads() -> Vec<(&'static str, Vec<(Atom, Atom)>)> {
    vec![
        ("chain-3", chain_edges(3)),
        ("cycle-3", cycle_edges(3)),
        ("tree-3", tree_edges(3)),
        ("random-3-sparse", random_digraph(3, 0.3, 11)),
        ("random-3-dense", random_digraph(3, 0.8, 12)),
        ("self-loop", vec![(Atom(0), Atom(0)), (Atom(0), Atom(1))]),
    ]
}

#[test]
fn all_baselines_agree_with_each_other_on_larger_graphs() {
    // The polynomial baselines can be cross-checked on much larger graphs than
    // the calculus query can reach.
    for (name, edges) in [
        ("chain-40", chain_edges(40)),
        ("cycle-25", cycle_edges(25)),
        ("tree-31", tree_edges(31)),
        ("random-15", random_digraph(15, 0.2, 3)),
        ("random-20-dense", random_digraph(20, 0.4, 4)),
    ] {
        let relation = Relation::from_pairs(edges);
        let naive = transitive_closure_naive(&relation);
        let seminaive = transitive_closure_seminaive(&relation);
        let warshall = transitive_closure_warshall(&relation);
        let datalog = datalog_tc(&relation);
        let while_result = while_tc(&relation);
        assert_eq!(naive, seminaive, "{name}");
        assert_eq!(seminaive, warshall, "{name}");
        assert_eq!(warshall, datalog, "{name}");
        assert_eq!(datalog, while_result, "{name}");
    }
}

#[test]
fn calculus_query_matches_the_baselines_on_small_graphs() {
    let query = transitive_closure_query();
    let config = EvalConfig::default();
    for (name, edges) in workloads() {
        let db = parent_database(&edges);
        let answer = query.eval(&db, &config).unwrap();
        let relation = Relation::from_pairs(edges.clone());
        let expected = transitive_closure_seminaive(&relation);
        if expected.is_empty() {
            assert!(answer.is_empty(), "{name}");
        } else {
            assert_eq!(
                Relation::from_instance(&answer).unwrap(),
                expected,
                "{name}"
            );
        }
    }
}

#[test]
fn calculus_query_cost_grows_much_faster_than_the_baseline() {
    let query = transitive_closure_query();
    let config = EvalConfig::default();
    let mut previous_steps = 0u64;
    for n in 2..=3u32 {
        let edges = chain_edges(n);
        let db = parent_database(&edges);
        let evaluation = query.eval_full(&db, &config).unwrap();
        assert!(
            evaluation.stats.steps > previous_steps,
            "work should grow with the input"
        );
        previous_steps = evaluation.stats.steps;
        // The quantifier domain is exactly 2^(n^2) — the hyper-exponential driver.
        assert_eq!(evaluation.stats.max_domain_seen, 1u64 << (n * n));
    }
}

#[test]
fn prepared_pipeline_reports_the_same_cost_model() {
    // The ExecStats carried by a QueryOutcome are the same counters the raw
    // evaluator reports, plus wall time — one prepared handle across sizes.
    let engine = itq_core::prelude::Engine::new();
    let prepared = engine.prepare(&transitive_closure_query()).unwrap();
    for n in 2..=3u32 {
        let db = parent_database(&chain_edges(n));
        let outcome = prepared
            .execute(&db, itq_core::prelude::Semantics::Limited)
            .unwrap();
        let evaluation = transitive_closure_query()
            .eval_full(&db, &EvalConfig::default())
            .unwrap();
        assert_eq!(outcome.result, evaluation.result, "n = {n}");
        assert_eq!(outcome.stats.steps, evaluation.stats.steps, "n = {n}");
        assert_eq!(outcome.stats.max_domain_seen, 1u64 << (n * n));
        assert_eq!(outcome.stats.invention_levels, 0);
    }
}
