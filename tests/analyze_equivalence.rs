//! Analysis purity: the static analyzer never changes what executes.
//!
//! Every `Engine::prepare` / `prepare_algebra` now runs the `itq-analyze`
//! pass pipeline and caches a [`Report`] on the handle.  The contract pinned
//! here, over random well-typed algebra expressions and the calculus
//! exemplars, across the engine trio and all three semantics:
//!
//! * analysis is **deterministic** — analyzing the same input twice (and the
//!   report cached by two independently prepared handles) yields the same
//!   diagnostics, and analysis never mutates its input;
//! * analysis is **inert** — reading `Prepared::diagnostics()` before,
//!   between, or after executions changes nothing: answers, whole
//!   [`ExecStats`] (via `deterministic()`), boundedness flags, and levels are
//!   byte-identical to a handle whose report is never touched;
//! * diagnosed defects still execute exactly as before: a query the analyzer
//!   warns about (unused variables, predicted budget blowups) returns the
//!   same answers and the same budget-error *strings* as the raw evaluator
//!   paths — the analyzer predicts errors, it never raises or rewrites them.

use itq_algebra::EvalConfig as AlgConfig;
use itq_algebra::{AlgExpr, SelFormula};
use itq_analyze::{analyze_algebra, analyze_query, Budgets, Severity};
use itq_calculus::{Formula, Query, Term};
use itq_core::prelude::*;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::single("PAR", Type::flat_tuple(2)).with("PERSON", Type::Atomic)
}

fn budgets() -> Budgets {
    let engine = Engine::new();
    Budgets {
        max_quantifier_domain: engine.calc_config().max_quantifier_domain,
        max_instance: engine.alg_config().max_instance,
    }
}

/// Databases over at most three atoms (the `backend_differential` shape).
fn small_db() -> BoxedStrategy<Database> {
    (
        proptest::collection::vec((0u32..3, 0u32..3), 0..5),
        proptest::collection::vec(0u32..3, 0..4),
    )
        .prop_map(|(edges, people)| {
            let pairs: Vec<(Atom, Atom)> =
                edges.into_iter().map(|(a, b)| (Atom(a), Atom(b))).collect();
            Database::single("PAR", Instance::from_pairs(pairs))
                .with("PERSON", Instance::from_atoms(people.into_iter().map(Atom)))
        })
        .boxed()
}

/// Well-typed expressions from an opcode recipe — a compact cousin of the
/// `backend_differential` generator, biased towards shapes the analyzer has
/// opinions about (⊥/⊤ selections, self-differences, products, powersets).
fn expr_from_recipe(recipe: &[(usize, usize)]) -> AlgExpr {
    let schema = schema();
    let mut stack: Vec<AlgExpr> = vec![AlgExpr::pred("PAR")];
    for &(op, arg) in recipe {
        let top = stack.pop().expect("stack never empties");
        let is_tuple = matches!(itq_algebra::infer_type(&top, &schema), Ok(Type::Tuple(_)));
        let candidate = match op {
            0 => {
                stack.push(top.clone());
                AlgExpr::pred(if arg % 2 == 0 { "PAR" } else { "PERSON" })
            }
            // Selections only over tuple operands: a σ over anything else is
            // the ITQ0203 vacuous selection, rejected at plan time.
            1 if is_tuple => top.clone().select(SelFormula::all(vec![])),
            2 if is_tuple => top.clone().select(SelFormula::any(vec![])),
            3 if is_tuple => top.clone().select(SelFormula::coords_eq(1, 1 + arg % 2)),
            4 => top.clone().diff(top.clone()),
            5 => top.clone().product(AlgExpr::pred("PERSON")),
            6 => top.clone().union(top.clone()),
            7 if top.powerset_count() == 0 => top.clone().powerset(),
            8 => top.clone().project(vec![1]),
            _ => top.clone(),
        };
        stack.push(if itq_algebra::infer_type(&candidate, &schema).is_ok() {
            candidate
        } else {
            top
        });
    }
    stack.pop().expect("stack never empties")
}

fn alg_expr() -> BoxedStrategy<AlgExpr> {
    proptest::collection::vec((0usize..10, 0usize..4), 0..6)
        .prop_map(|recipe| expr_from_recipe(&recipe))
        .boxed()
}

fn engine_trio() -> [Engine; 3] {
    let capped = EvalConfig {
        max_steps: 500_000,
        ..EvalConfig::default()
    };
    let invention = InventionConfig {
        max_invented: 1,
        eval: capped,
    };
    [
        Engine::builder()
            .calc_config(capped)
            .invention_config(invention)
            .build(),
        Engine::builder()
            .calc_config(capped)
            .invention_config(invention)
            .use_algebra_planner(false)
            .build(),
        Engine::builder()
            .calc_config(capped)
            .invention_config(invention)
            .use_algebra_planner(false)
            .use_compiled(false)
            .build(),
    ]
}

/// The comparable face of an execution: answers, flags, levels, and the
/// wall-clock-free statistics on success, the full error string on failure.
fn fingerprint(outcome: Result<QueryOutcome, itq_core::engine::EngineError>) -> String {
    match outcome {
        Ok(o) => format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            o.result,
            o.bounded_approximation,
            o.defined_at,
            o.stabilised_at,
            o.stats.deterministic()
        ),
        Err(e) => format!("error: {e}"),
    }
}

/// Execute twice on one handle (reading the report in between) and once on a
/// fresh handle whose report is never read; all three must agree.
fn assert_analysis_is_inert(engine: &Engine, expr: &AlgExpr, db: &Database) {
    for semantics in Semantics::ALL {
        let touched = engine
            .prepare_algebra(expr, &schema())
            .expect("generated expressions prepare");
        let before = fingerprint(touched.execute(db, semantics));
        let report = touched.diagnostics().clone();
        let after = fingerprint(touched.execute(db, semantics));
        assert_eq!(before, after, "{semantics}: re-execution on {expr}");

        let untouched = engine
            .prepare_algebra(expr, &schema())
            .expect("generated expressions prepare");
        let fresh = fingerprint(untouched.execute(db, semantics));
        assert_eq!(before, fresh, "{semantics}: fresh handle on {expr}");
        assert_eq!(
            &report,
            untouched.diagnostics(),
            "reports diverge across handles on {expr}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Direct analysis is deterministic and leaves its input untouched.
    #[test]
    fn analysis_is_deterministic_and_pure(expr in alg_expr()) {
        let pristine = expr.clone();
        let first = analyze_algebra(&expr, &schema(), &budgets());
        let second = analyze_algebra(&expr, &schema(), &budgets());
        prop_assert_eq!(&first, &second, "{}", &expr);
        prop_assert_eq!(&expr, &pristine, "analysis mutated its input");
        // Every report carries at least the ITQ0401 stratum line.
        prop_assert!(!first.diagnostics.is_empty());
    }

    /// Reading diagnostics never perturbs execution, across the engine trio
    /// and all three semantics.
    #[test]
    fn diagnostics_never_perturb_execution(expr in alg_expr(), db in small_db()) {
        for engine in engine_trio() {
            assert_analysis_is_inert(&engine, &expr, &db);
        }
    }
}

/// A calculus query the analyzer warns about (unused + shadowed variables,
/// an always-true equality) still returns the exact grandparent answers.
#[test]
fn warned_calculus_query_executes_unchanged() {
    let body = Formula::exists(
        "x",
        Type::flat_tuple(2),
        Formula::exists(
            "y",
            Type::flat_tuple(2),
            Formula::exists(
                "u",
                Type::flat_tuple(2),
                Formula::and(vec![
                    Formula::pred("PAR", Term::var("x")),
                    Formula::pred("PAR", Term::var("y")),
                    Formula::eq(Term::proj("x", 2), Term::proj("y", 1)),
                    Formula::eq(Term::proj("t", 1), Term::proj("x", 1)),
                    Formula::eq(Term::proj("t", 2), Term::proj("y", 2)),
                    Formula::eq(Term::var("t"), Term::var("t")),
                ]),
            ),
        ),
    );
    let query = Query::new("t", Type::flat_tuple(2), body, schema()).unwrap();
    let report = analyze_query(&query, &budgets());
    assert!(
        report.at_least(Severity::Warning).count() >= 2,
        "expected the unused-`u` and always-true warnings: {report:?}"
    );

    let db = Database::single(
        "PAR",
        Instance::from_pairs(vec![(Atom(0), Atom(1)), (Atom(1), Atom(2))]),
    )
    .with("PERSON", Instance::empty());
    for engine in engine_trio() {
        let prepared = engine.prepare(&query).unwrap();
        assert_eq!(prepared.diagnostics(), &report, "prepare caches the report");
        let outcome = prepared.execute(&db, Semantics::Limited).unwrap();
        assert_eq!(
            outcome.result.len(),
            1,
            "grandparent pair survives warnings"
        );
    }
}

/// A predicted budget blowup (ITQ0302 at prepare time) still dies at run time
/// with the evaluator's own byte-identical message on every backend — the
/// analyzer forecasts the error, the evaluator raises it.
#[test]
fn predicted_budget_error_strings_are_untouched() {
    // Four stacked powersets have a database-independent cardinality lower
    // bound of 0 → 1 → 2 → 4 → 16, which exceeds a budget of 4 on any input.
    let expr = AlgExpr::pred("PAR")
        .powerset()
        .powerset()
        .powerset()
        .powerset();
    let tiny = AlgConfig { max_instance: 4 };
    let report = analyze_algebra(
        &expr,
        &schema(),
        &Budgets {
            max_instance: 4,
            ..budgets()
        },
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == itq_analyze::diag::CARDINALITY_BUDGET),
        "a lower bound of 16 over a budget of 4 should be predicted: {report:?}"
    );

    let db = Database::single("PAR", Instance::empty()).with("PERSON", Instance::empty());
    let expected = expr.eval(&db, &schema(), &tiny).unwrap_err().to_string();
    for (label, engine) in [
        ("planner", Engine::builder().alg_config(tiny).build()),
        (
            "tuple",
            Engine::builder()
                .alg_config(tiny)
                .use_algebra_planner(false)
                .build(),
        ),
        (
            "tree-walk",
            Engine::builder()
                .alg_config(tiny)
                .use_algebra_planner(false)
                .use_compiled(false)
                .build(),
        ),
    ] {
        let prepared = engine.prepare_algebra(&expr, &schema()).unwrap();
        assert!(
            !prepared.diagnostics().diagnostics.is_empty(),
            "{label}: report cached"
        );
        let err = prepared.execute(&db, Semantics::Limited).unwrap_err();
        assert_eq!(err.to_string(), expected, "{label}");
    }
}
