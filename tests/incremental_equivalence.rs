//! Incremental-engine equivalence suite.
//!
//! The contract of [`itq_core::incremental`]: after ANY sequence of inserts
//! and deletes, every watched view's stored outcome — answer instance or
//! budget-error string — is **byte-identical** to executing its `Prepared`
//! handle from scratch on a snapshot of the mutated database.  Random
//! mutation sequences drive the check:
//!
//! * across the delta strategies (semi-naive closure maintenance for the
//!   Example 3.1 transitive-closure shape, single-rule Datalog delta firing
//!   for conjunctive bodies) and the guarded re-execution fallback;
//! * across the engine's execution backends: the compiled slot evaluator,
//!   the legacy tree walker (`use_compiled(false)`), and — via a watched
//!   *algebra* handle — the set-at-a-time planner and the tuple-at-a-time
//!   evaluator (`use_algebra_planner(false)`);
//! * across all three semantics of the prepared pipeline (limited, finite
//!   invention, terminal invention — the invention semantics take the
//!   re-execution path by construction);
//! * including failing executions: a starved engine's budget error must stay
//!   byte-identical through refreshes until the database actually changes it.

use itq_algebra::{AlgExpr, SelFormula};
use itq_calculus::EvalConfig;
use itq_core::incremental::IncrementalDb;
use itq_core::prelude::*;
use itq_core::queries;
use proptest::prelude::*;

/// One mutation: insert (true) or delete (false) a `PAR` pair.
type Mutation = (bool, (u32, u32));

fn mutations(atoms: u32, len: usize) -> BoxedStrategy<Vec<Mutation>> {
    proptest::collection::vec((any::<bool>(), (0u32..atoms, 0u32..atoms)), 0..len).boxed()
}

fn seed_db(atoms: u32) -> BoxedStrategy<Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..atoms, 0u32..atoms), 0..5).boxed()
}

/// The grandparent join as an algebra expression: π_{1,4}(σ_{$2=$3}(PAR×PAR)).
fn grandparent_algebra() -> AlgExpr {
    AlgExpr::pred("PAR")
        .product(AlgExpr::pred("PAR"))
        .select(SelFormula::coords_eq(2, 3))
        .project(vec![1, 4])
}

/// Assert a watched view's stored outcome is byte-identical to a from-scratch
/// execution of the same handle on the current snapshot.
fn assert_matches_scratch(inc: &IncrementalDb, name: &str, context: &str) {
    let view = inc.view(name).expect("view is watched");
    let scratch = view
        .prepared()
        .execute(&inc.snapshot(), view.semantics())
        .map(|outcome| outcome.result);
    match (view.outcome(), &scratch) {
        (Ok(stored), Ok(fresh)) => {
            assert_eq!(stored, fresh, "{name} answers diverged {context}")
        }
        (Err(stored), Err(fresh)) => assert_eq!(
            stored.to_string(),
            fresh.to_string(),
            "{name} error strings diverged {context}"
        ),
        (stored, fresh) => {
            panic!("{name} outcome kind diverged {context}: stored {stored:?} vs scratch {fresh:?}")
        }
    }
}

fn apply(inc: &mut IncrementalDb, (insert, (a, b)): Mutation) {
    let tuple = vec![Value::pair(Atom(a), Atom(b))];
    if insert {
        inc.insert("PAR", tuple).expect("PAR pairs are well-typed");
    } else {
        inc.delete("PAR", tuple).expect("PAR pairs are well-typed");
    }
}

fn incremental_db(seed: &[(u32, u32)]) -> IncrementalDb {
    let pairs: Vec<(Atom, Atom)> = seed.iter().map(|&(a, b)| (Atom(a), Atom(b))).collect();
    IncrementalDb::new(queries::parent_schema(), &queries::parent_database(&pairs))
        .expect("seed database conforms to the schema")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Limited interpretation, all four backends: the conjunctive views ride
    /// the Datalog delta rules; the algebra handles (planner on and off) ride
    /// the same lowering through their translated queries.
    #[test]
    fn conjunctive_views_track_mutations(
        seed in seed_db(5),
        muts in mutations(5, 7),
    ) {
        let planner_on = Engine::new();
        let planner_off = Engine::builder().use_algebra_planner(false).build();
        let tree_walk = Engine::builder().use_compiled(false).build();
        let schema = queries::parent_schema();
        let mut inc = incremental_db(&seed);
        for (name, prepared) in [
            ("gp", planner_on.prepare(&queries::grandparent_query()).unwrap()),
            ("sib", planner_on.prepare(&queries::sibling_query()).unwrap()),
            ("gp-tw", tree_walk.prepare(&queries::grandparent_query()).unwrap()),
            ("gp-alg", planner_on.prepare_algebra(&grandparent_algebra(), &schema).unwrap()),
            ("gp-tup", planner_off.prepare_algebra(&grandparent_algebra(), &schema).unwrap()),
        ] {
            inc.watch(name, prepared, Semantics::Limited);
            assert_matches_scratch(&inc, name, "at watch time");
        }
        for (step, m) in muts.into_iter().enumerate() {
            apply(&mut inc, m);
            for name in ["gp", "sib", "gp-tw", "gp-alg", "gp-tup"] {
                assert_matches_scratch(&inc, name, &format!("after mutation {step}"));
            }
        }
    }

    /// The transitive-closure shape: inserts extend the warm closure
    /// semi-naively, deletes recompute the relational fixpoint — both must
    /// match the hyper-exponential calculus route exactly.
    #[test]
    fn transitive_closure_view_tracks_mutations(
        seed in seed_db(3),
        muts in mutations(3, 5),
    ) {
        let engine = Engine::new();
        let mut inc = incremental_db(&seed);
        let prepared = engine.prepare(&queries::transitive_closure_query()).unwrap();
        inc.watch("tc", prepared, Semantics::Limited);
        prop_assert_eq!(inc.view("tc").unwrap().strategy_name(), "seminaive-closure");
        assert_matches_scratch(&inc, "tc", "at watch time");
        for (step, m) in muts.into_iter().enumerate() {
            apply(&mut inc, m);
            assert_matches_scratch(&inc, "tc", &format!("after mutation {step}"));
        }
    }

    /// The invention semantics re-execute (guarded), and must still track.
    #[test]
    fn invention_views_track_mutations(
        seed in seed_db(3),
        muts in mutations(3, 4),
    ) {
        let engine = Engine::builder().max_invented(1).build();
        let mut inc = incremental_db(&seed);
        for (name, semantics) in [
            ("gp-fi", Semantics::FiniteInvention),
            ("gp-ti", Semantics::TerminalInvention),
        ] {
            let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
            inc.watch(name, prepared, semantics);
            prop_assert_eq!(inc.view(name).unwrap().strategy_name(), "re-execute");
            assert_matches_scratch(&inc, name, "at watch time");
        }
        for (step, m) in muts.into_iter().enumerate() {
            apply(&mut inc, m);
            for name in ["gp-fi", "gp-ti"] {
                assert_matches_scratch(&inc, name, &format!("after mutation {step}"));
            }
        }
    }

    /// Budget errors: a starved engine fails identically — same error string —
    /// whether the view refreshed incrementally or executed from scratch.
    #[test]
    fn budget_error_strings_track_mutations(
        seed in seed_db(4),
        muts in mutations(4, 5),
    ) {
        let starved = Engine::builder()
            .calc_config(EvalConfig { max_steps: 40, ..EvalConfig::default() })
            .build();
        let mut inc = incremental_db(&seed);
        let prepared = starved.prepare(&queries::grandparent_query()).unwrap();
        inc.watch("gp", prepared, Semantics::Limited);
        assert_matches_scratch(&inc, "gp", "at watch time");
        for (step, m) in muts.into_iter().enumerate() {
            apply(&mut inc, m);
            assert_matches_scratch(&inc, "gp", &format!("after mutation {step}"));
        }
    }
}

/// Versioning and tier bookkeeping survive a long alternating run (a plain
/// test so it always runs regardless of the proptest case budget).
#[test]
fn versions_count_epochs_and_snapshots_stay_consistent() {
    let engine = Engine::new();
    let mut inc = incremental_db(&[(0, 1)]);
    let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    inc.watch("gp", prepared, Semantics::Limited);
    for round in 0..6u32 {
        apply(&mut inc, (true, (round % 3, (round + 1) % 3)));
        apply(&mut inc, (false, ((round + 1) % 3, round % 3)));
        assert_matches_scratch(&inc, "gp", "during the alternating run");
    }
    // 1 initial + 12 mutations.
    assert_eq!(inc.version(), 13);
}
