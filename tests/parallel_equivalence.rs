//! Parallel == sequential differential suite.
//!
//! The `parallelism(n)` knob must trade wall-clock only: answers, flags,
//! error strings (logical budgets *and* governor trips), and every
//! deterministic counter are byte-identical at every worker count, on every
//! backend of the trio (planned algebra, compiled calculus, legacy tree
//! walker), under all three semantics.  This suite is the executable form of
//! that contract:
//!
//! * random well-typed algebra expressions and random small databases run
//!   through `Prepared::with_parallelism` at workers ∈ {1, 2, 8}, under
//!   default and starved step budgets;
//! * the exemplar calculus workloads (grandparent, sibling, parity,
//!   perfect-square, total orders) do the same on the compiled-calculus
//!   route;
//! * deterministic governor trips (zero deadline, pre-raised cancellation)
//!   surface one canonical message each, independent of worker count;
//! * stats keep their shape: the new `partitions` counter is 0 exactly on
//!   the sequential paths (workers = 1, or the tree walker at any setting),
//!   and the deterministic work counters (`steps`, `quantifier_values`,
//!   `candidates_checked`, `max_domain_seen`, `join_probes`,
//!   `tuples_materialised`) never depend on the worker count.
//!
//! The cache-locality counters (`domain_cache_hits`/`misses`,
//! `interned_values`) keep their *meaning* but not their exact values at
//! workers > 1 — per-worker overlays may re-materialise what a sequential
//! memo would have shared — so they are deliberately not compared.

use itq_core::prelude::*;
use itq_core::queries;
use proptest::prelude::*;

use itq_algebra::AlgExpr;
use itq_calculus::Query;

const WORKER_SWEEP: [usize; 2] = [2, 8];

fn schema() -> Schema {
    Schema::single("PAR", Type::flat_tuple(2)).with("PERSON", Type::Atomic)
}

/// Databases over at most four atoms: enough rows for the hash-join probe to
/// actually partition, small enough for the tree walker.
fn small_db() -> BoxedStrategy<Database> {
    (
        proptest::collection::vec((0u32..4, 0u32..4), 0..8),
        proptest::collection::vec(0u32..4, 0..5),
    )
        .prop_map(|(edges, people)| {
            let pairs: Vec<(Atom, Atom)> =
                edges.into_iter().map(|(a, b)| (Atom(a), Atom(b))).collect();
            Database::single("PAR", Instance::from_pairs(pairs))
                .with("PERSON", Instance::from_atoms(people.into_iter().map(Atom)))
        })
        .boxed()
}

/// A small deterministic family of well-typed algebra expressions, indexed by
/// a proptest-drawn selector: joins (the partitioned probe), products,
/// powersets, set algebra, and projections.
fn algebra_exemplar(index: usize) -> AlgExpr {
    let join = AlgExpr::pred("PAR")
        .product(AlgExpr::pred("PAR"))
        .select(itq_algebra::SelFormula::coords_eq(2, 3))
        .project(vec![1, 4]);
    match index % 6 {
        0 => join,
        1 => AlgExpr::pred("PAR").product(AlgExpr::pred("PERSON")),
        2 => AlgExpr::pred("PERSON").powerset(),
        3 => join.union(AlgExpr::pred("PAR")),
        4 => AlgExpr::pred("PAR")
            .select(itq_algebra::SelFormula::coords_eq(1, 2))
            .project(vec![1]),
        _ => AlgExpr::pred("PAR")
            .project(vec![2, 1])
            .diff(AlgExpr::pred("PAR")),
    }
}

/// The engine trio at a given worker count and step budget.  Budgets are
/// capped so pathological draws die on a classified budget error (whose
/// string must *also* be worker-count independent) instead of burning time.
fn trio(max_steps: u64) -> [(&'static str, Engine); 3] {
    let capped = EvalConfig {
        max_steps,
        ..EvalConfig::default()
    };
    let invention = InventionConfig {
        max_invented: 1,
        eval: capped,
    };
    [
        (
            "planner",
            Engine::builder()
                .calc_config(capped)
                .invention_config(invention)
                .parallelism(1)
                .build(),
        ),
        (
            "compiled",
            Engine::builder()
                .calc_config(capped)
                .invention_config(invention)
                .use_algebra_planner(false)
                .parallelism(1)
                .build(),
        ),
        (
            "tree-walk",
            Engine::builder()
                .calc_config(capped)
                .invention_config(invention)
                .use_algebra_planner(false)
                .use_compiled(false)
                .parallelism(1)
                .build(),
        ),
    ]
}

/// Byte-for-byte comparison of a sequential and a parallel outcome: answers,
/// flags, levels, and error *strings* (the rendered form is the contract the
/// REPL and serve mode expose), plus the worker-independent counters.
fn assert_outcomes_byte_identical(
    label: &str,
    semantics: Semantics,
    workers: usize,
    sequential: &Result<QueryOutcome, EngineError>,
    parallel: &Result<QueryOutcome, EngineError>,
) {
    match (sequential, parallel) {
        (Ok(seq), Ok(par)) => {
            assert_eq!(
                seq.result, par.result,
                "{label}/{semantics}: answers at workers={workers}"
            );
            assert_eq!(
                seq.result.iter().collect::<Vec<_>>(),
                par.result.iter().collect::<Vec<_>>(),
                "{label}/{semantics}: answer order at workers={workers}"
            );
            assert_eq!(seq.bounded_approximation, par.bounded_approximation);
            assert_eq!(seq.defined_at, par.defined_at);
            assert_eq!(seq.stabilised_at, par.stabilised_at);
            assert_eq!(seq.semantics, par.semantics);
            for (counter, s, p) in [
                ("steps", seq.stats.steps, par.stats.steps),
                (
                    "quantifier_values",
                    seq.stats.quantifier_values,
                    par.stats.quantifier_values,
                ),
                (
                    "candidates_checked",
                    seq.stats.candidates_checked,
                    par.stats.candidates_checked,
                ),
                (
                    "max_domain_seen",
                    seq.stats.max_domain_seen,
                    par.stats.max_domain_seen,
                ),
                ("join_probes", seq.stats.join_probes, par.stats.join_probes),
                (
                    "tuples_materialised",
                    seq.stats.tuples_materialised,
                    par.stats.tuples_materialised,
                ),
            ] {
                assert_eq!(
                    s, p,
                    "{label}/{semantics}: {counter} must not depend on workers={workers}"
                );
            }
            assert_eq!(
                seq.stats.partitions, 0,
                "{label}/{semantics}: sequential runs report no partitions"
            );
        }
        (Err(seq), Err(par)) => {
            assert_eq!(
                seq.to_string(),
                par.to_string(),
                "{label}/{semantics}: error strings at workers={workers}"
            );
        }
        (seq, par) => panic!(
            "{label}/{semantics}: workers={workers} diverged: sequential {seq:?} vs parallel {par:?}"
        ),
    }
}

fn assert_algebra_parallel_equivalence(expr: &AlgExpr, db: &Database, max_steps: u64) {
    for (label, engine) in trio(max_steps) {
        let prepared = engine
            .prepare_algebra(expr, &schema())
            .expect("exemplar expressions prepare");
        for semantics in Semantics::ALL {
            let sequential = prepared.execute(db, semantics);
            for workers in WORKER_SWEEP {
                let parallel = prepared.with_parallelism(workers).execute(db, semantics);
                assert_outcomes_byte_identical(label, semantics, workers, &sequential, &parallel);
            }
        }
    }
}

fn assert_calculus_parallel_equivalence(query: &Query, db: &Database, max_steps: u64) {
    for (label, engine) in trio(max_steps) {
        let prepared = engine.prepare(query).expect("exemplar queries prepare");
        for semantics in Semantics::ALL {
            let sequential = prepared.execute(db, semantics);
            for workers in WORKER_SWEEP {
                let parallel = prepared.with_parallelism(workers).execute(db, semantics);
                assert_outcomes_byte_identical(label, semantics, workers, &sequential, &parallel);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random databases through the algebra exemplars: the full trio ×
    /// {1,2,8} workers × all semantics, under a healthy and a starved step
    /// budget (so budget error strings are compared too).
    #[test]
    fn algebra_handles_are_worker_count_independent(
        index in 0usize..12,
        db in small_db(),
    ) {
        let expr = algebra_exemplar(index);
        assert_algebra_parallel_equivalence(&expr, &db, 500_000);
        assert_algebra_parallel_equivalence(&expr, &db, 1_000);
    }

    /// Random parent databases through the exemplar calculus queries on the
    /// compiled route (and its tree-walking ablation).
    #[test]
    fn calculus_queries_are_worker_count_independent(
        edges in proptest::collection::vec((0u32..5, 0u32..5), 0..7),
    ) {
        let pairs: Vec<(Atom, Atom)> = edges.into_iter().map(|(a, b)| (Atom(a), Atom(b))).collect();
        let db = queries::parent_database(&pairs);
        assert_calculus_parallel_equivalence(&queries::grandparent_query(), &db, 500_000);
        assert_calculus_parallel_equivalence(&queries::sibling_query(), &db, 50_000);
    }
}

/// Every exemplar workload of the report grid, once, at the full sweep — the
/// non-random anchor of the suite.
#[test]
fn exemplar_workloads_are_worker_count_independent() {
    for (name, query, db) in queries::exemplar_workloads() {
        let engine = Engine::builder().parallelism(1).build();
        let prepared = engine.prepare(&query).expect("exemplars prepare");
        let sequential = prepared.execute(&db, Semantics::Limited);
        for workers in WORKER_SWEEP {
            let parallel = prepared
                .with_parallelism(workers)
                .execute(&db, Semantics::Limited);
            assert_outcomes_byte_identical(
                name,
                Semantics::Limited,
                workers,
                &sequential,
                &parallel,
            );
        }
    }
}

/// Deterministic governor trips surface one canonical message each, no
/// matter the worker count, the backend, or the semantics.
#[test]
fn governor_trips_are_byte_identical_at_every_worker_count() {
    let expr = algebra_exemplar(0);
    let db = Database::single(
        "PAR",
        Instance::from_pairs(vec![(Atom(0), Atom(1)), (Atom(1), Atom(2))]),
    )
    .with("PERSON", Instance::empty());

    for (governor, expected) in [
        (
            GovernorConfig {
                deadline_millis: Some(0),
                ..GovernorConfig::default()
            },
            "execution deadline of 0 ms exceeded",
        ),
        (
            {
                let flag = CancelFlag::new();
                flag.cancel();
                GovernorConfig {
                    cancel: Some(flag),
                    ..GovernorConfig::default()
                }
            },
            "execution cancelled",
        ),
    ] {
        for (label, engine) in trio(500_000) {
            let prepared = engine
                .prepare_algebra(&expr, &schema())
                .unwrap()
                .with_governor(governor.clone());
            for workers in [1, 2, 8] {
                for semantics in Semantics::ALL {
                    let err = prepared
                        .with_parallelism(workers)
                        .execute(&db, semantics)
                        .unwrap_err();
                    assert!(
                        matches!(err, EngineError::Resource(_)),
                        "{label}/{semantics}/workers={workers}: {err}"
                    );
                    assert_eq!(
                        err.to_string(),
                        expected,
                        "{label}/{semantics}/workers={workers}"
                    );
                }
            }
        }
    }
}

/// Stats-shape pin: a database big enough to partition reports `partitions`
/// only where the parallel paths actually engaged, and the tree walker is
/// sequential at every worker count.
#[test]
fn partitions_counter_keeps_its_shape() {
    let edges: Vec<(Atom, Atom)> = (0..24).map(|i| (Atom(i), Atom(i + 1))).collect();
    let db = Database::single("PAR", Instance::from_pairs(edges)).with("PERSON", Instance::empty());
    let expr = algebra_exemplar(0);

    let [(_, planner), (_, compiled), (_, tree)] = trio(10_000_000);

    // Planned algebra: the probe partitions across the workers.
    let planned = planner.prepare_algebra(&expr, &schema()).unwrap();
    assert_eq!(
        planned
            .execute(&db, Semantics::Limited)
            .unwrap()
            .stats
            .partitions,
        0
    );
    let planned_par = planned
        .with_parallelism(4)
        .execute(&db, Semantics::Limited)
        .unwrap();
    assert!(
        planned_par.stats.partitions > 0,
        "parallel planner run must report its probe partitions"
    );

    // Compiled calculus: the candidate loop partitions across the workers.
    // (A smaller database here — the calculus quantifier domains grow with
    // the square of the atom count, and the tree walker runs the same query.)
    let small =
        queries::parent_database(&(0..6).map(|i| (Atom(i), Atom(i + 1))).collect::<Vec<_>>());
    let query = queries::grandparent_query();
    let compiled_handle = compiled.prepare(&query).unwrap();
    assert_eq!(
        compiled_handle
            .execute(&small, Semantics::Limited)
            .unwrap()
            .stats
            .partitions,
        0
    );
    let compiled_par = compiled_handle
        .with_parallelism(4)
        .execute(&small, Semantics::Limited)
        .unwrap();
    assert!(
        compiled_par.stats.partitions > 0,
        "parallel compiled run must report its candidate partitions"
    );

    // The tree walker has no partitioned path: the knob is a no-op there.
    let walker = tree.prepare(&query).unwrap();
    for workers in [1, 8] {
        let outcome = walker
            .with_parallelism(workers)
            .execute(&small, Semantics::Limited)
            .unwrap();
        assert_eq!(outcome.stats.partitions, 0, "workers={workers}");
    }
}
