//! Integration suite for the prepare-once / execute-many pipeline: on the
//! genealogy, parity, and exponent workloads, [`Prepared::execute`] must be
//! bit-identical to the legacy per-call `eval_*` API under all three
//! semantics, a single handle must survive many executions, and the static
//! artifacts cached at prepare time must equal what the underlying crates
//! compute directly (property-tested over generated queries).

#![allow(deprecated)] // half of this suite *is* the legacy API, for comparison

use itq_calculus::{Formula, Query};
use itq_core::prelude::*;
use itq_core::queries;
use proptest::prelude::*;

/// The exemplar queries of the three workloads named by the acceptance
/// criteria, each paired with a database small enough for every semantics —
/// the same grid the `report --stats-json` trajectory records.
fn workloads() -> Vec<(&'static str, Query, Database)> {
    queries::exemplar_workloads()
}

/// A tight invention bound keeps the set-height-1 workloads affordable under
/// the invention semantics while still exercising the n > 0 levels.
fn engine() -> Engine {
    Engine::builder().max_invented(1).build()
}

#[test]
fn prepared_execute_is_bit_identical_to_the_legacy_api_under_all_semantics() {
    let engine = engine();
    for (name, query, db) in workloads() {
        let prepared = engine.prepare(&query).unwrap();
        for semantics in Semantics::ALL {
            let outcome = prepared.execute(&db, semantics).unwrap();
            let legacy = engine.eval_with_semantics(&query, &db, semantics).unwrap();
            assert_eq!(outcome.result, legacy.result, "{name} under {semantics}");
            assert_eq!(
                outcome.bounded_approximation, legacy.bounded_approximation,
                "{name} under {semantics}"
            );
        }
        // The richer legacy shapes agree with the unified outcome too.
        let evaluation = engine.eval_calculus(&query, &db).unwrap();
        let limited = prepared.execute(&db, Semantics::Limited).unwrap();
        assert_eq!(evaluation.result, limited.result, "{name}");
        assert_eq!(
            evaluation.stats,
            limited.stats.eval_stats_for_tests(),
            "{name}"
        );
        let report = engine.eval_finite_invention(&query, &db).unwrap();
        let finite = prepared.execute(&db, Semantics::FiniteInvention).unwrap();
        assert_eq!(report.union, finite.result, "{name}");
        assert_eq!(report.stabilised_at, finite.stabilised_at, "{name}");
        match engine.eval_terminal_invention(&query, &db).unwrap() {
            TerminalOutcome::Defined { n, answer } => {
                let terminal = prepared.execute(&db, Semantics::TerminalInvention).unwrap();
                assert_eq!(terminal.defined_at, Some(n), "{name}");
                assert_eq!(terminal.result, answer, "{name}");
            }
            TerminalOutcome::UndefinedWithinBound { tried } => {
                let terminal = prepared.execute(&db, Semantics::TerminalInvention).unwrap();
                assert_eq!(terminal.defined_at, None, "{name}");
                assert!(terminal.result.is_empty(), "{name}");
                assert_eq!(terminal.stats.invention_levels as usize, tried, "{name}");
            }
        }
    }
}

/// Hack-free stats comparison: `ExecStats` and `EvalStats` share their
/// evaluator counters; compare through the shared struct.
trait EvalStatsView {
    fn eval_stats_for_tests(&self) -> itq_calculus::eval::EvalStats;
}

impl EvalStatsView for ExecStats {
    fn eval_stats_for_tests(&self) -> itq_calculus::eval::EvalStats {
        itq_calculus::eval::EvalStats {
            steps: self.steps,
            quantifier_values: self.quantifier_values,
            candidates_checked: self.candidates_checked,
            max_domain_seen: self.max_domain_seen,
            domain_cache_hits: self.domain_cache_hits,
            domain_cache_misses: self.domain_cache_misses,
            interned_values: self.interned_values,
        }
    }
}

#[test]
fn prepare_once_execute_many_is_stable_across_repetition_and_databases() {
    let engine = engine();
    let prepared = engine.prepare(&queries::grandparent_query()).unwrap();
    // Repeated execution of one handle never drifts (the invention scratch
    // space is rebuilt per call, so earlier calls cannot leak into later ones).
    let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    for semantics in Semantics::ALL {
        let first = prepared.execute(&db, semantics).unwrap();
        for _ in 0..3 {
            let again = prepared.execute(&db, semantics).unwrap();
            assert_eq!(first.result, again.result, "{semantics}");
            assert_eq!(
                first.bounded_approximation, again.bounded_approximation,
                "{semantics}"
            );
            // Whole-stats equality modulo wall clock: every deterministic
            // evaluator counter must be reproduced run over run.
            assert_eq!(
                first.stats.deterministic(),
                again.stats.deterministic(),
                "{semantics}"
            );
        }
    }
    // One handle, many databases: identical to a freshly prepared handle each
    // time (prepare-once loses nothing).
    for n in 2..=4u32 {
        let edges: Vec<(Atom, Atom)> = (0..n - 1).map(|i| (Atom(i), Atom(i + 1))).collect();
        let db = queries::parent_database(&edges);
        let reused = prepared.execute(&db, Semantics::Limited).unwrap();
        let fresh = engine
            .prepare(&queries::grandparent_query())
            .unwrap()
            .execute(&db, Semantics::Limited)
            .unwrap();
        assert_eq!(reused.result, fresh.result, "n = {n}");
        assert_eq!(
            reused.stats.deterministic(),
            fresh.stats.deterministic(),
            "n = {n}"
        );
    }
}

#[test]
fn execute_shares_the_handle_without_exclusive_access() {
    // The REPL use case behind the `&mut` asymmetry fix: several readers of
    // one handle evaluate limited queries with no mutable borrow in sight.
    let engine = engine();
    let prepared = engine.prepare(&queries::sibling_query()).unwrap();
    let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(0), Atom(2))]);
    let readers = [&prepared, &prepared, &prepared];
    for reader in readers {
        assert_eq!(
            reader
                .execute(&db, Semantics::Limited)
                .unwrap()
                .result
                .len(),
            2
        );
    }
    // Invention semantics also go through `&self`: scratch atoms come from an
    // interior clone, and the engine's universe is observably untouched.
    let before = engine.universe().len();
    let _ = prepared.execute(&db, Semantics::FiniteInvention).unwrap();
    assert_eq!(engine.universe().len(), before);
}

/// Well-typed queries: one of the repo's canonical queries with a random stack
/// of validity-preserving decorations applied to its body (arbitrary random
/// formulas are almost never t-wffs, so generation works by construction).
fn query() -> BoxedStrategy<Query> {
    let base = (0usize..4).prop_map(|i| match i {
        0 => queries::grandparent_query(),
        1 => queries::sibling_query(),
        2 => queries::transitive_closure_query(),
        _ => queries::even_cardinality_query(),
    });
    (base, proptest::collection::vec(0usize..4, 0..4))
        .prop_map(|(q, decorations)| {
            let mut body = q.body().clone();
            for d in decorations {
                body = match d {
                    0 => Formula::And(vec![body]),
                    1 => Formula::Or(vec![body]),
                    2 => Formula::not(Formula::not(body)),
                    // A closed quantified conjunct with a type of height 2.
                    _ => Formula::And(vec![
                        body,
                        Formula::exists("w", Type::nested_set(2), Formula::truth()),
                    ]),
                };
            }
            q.with_body(body).expect("decorations preserve validity")
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The classification cached in a `Prepared` handle is exactly the
    /// query's own classification, for arbitrary (decorated) queries.
    #[test]
    fn prepared_classification_equals_query_classification(q in query()) {
        let engine = Engine::new();
        let prepared = engine.prepare(&q).unwrap();
        prop_assert_eq!(prepared.classification(), &q.classification());
        prop_assert_eq!(prepared.query(), &q);
    }

    /// Preparing also caches the existential-fragment analysis faithfully.
    #[test]
    fn prepared_sf_classification_matches_normal_forms(q in query()) {
        let engine = Engine::new();
        let prepared = engine.prepare(&q).unwrap();
        prop_assert_eq!(
            prepared.sf_classification(),
            &itq_calculus::normal::sf_classification(&q)
        );
    }
}
