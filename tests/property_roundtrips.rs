//! Property-based integration tests over the whole stack: constructive-domain
//! ranking, nest/unnest, genericity of query answers under atom permutations, and
//! stability of the baselines on random graphs.

use itq_algebra::nest::{nest, unnest};
use itq_calculus::eval::EvalConfig;
use itq_core::queries;
use itq_object::cons::{cons_cardinality, rank_of_value, value_at_rank};
use itq_object::{Atom, Database, Instance, Type, Value};
use itq_relational::{transitive_closure_seminaive, transitive_closure_warshall, Relation};
use proptest::prelude::*;

/// Strategy: a small set of atoms with ids in a fixed window.
fn small_atoms() -> impl Strategy<Value = Vec<Atom>> {
    (1usize..5).prop_map(|n| (0..n as u32).map(Atom).collect())
}

/// Strategy: an arbitrary type of set-height at most 2 and width at most 2.
fn small_type() -> impl Strategy<Value = Type> {
    let leaf = Just(Type::Atomic);
    leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Type::set),
            proptest::collection::vec(inner, 1..3).prop_map(|components| {
                // Respect the "no nested tuple" invariant via the constructor.
                Type::tuple(components)
            }),
        ]
    })
    .prop_filter("keep the domain enumerable", |t| t.set_height() <= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every rank below the cardinality decodes to a value that re-ranks to the
    /// same rank and lies in the constructive domain.
    #[test]
    fn cons_domain_ranking_round_trips(ty in small_type(), atoms in small_atoms()) {
        let card = cons_cardinality(&ty, atoms.len());
        if let Some(total) = card.as_exact() {
            let total = total.min(64);
            for rank in 0..total {
                let value = value_at_rank(&ty, &atoms, rank).unwrap();
                prop_assert!(value.has_type(&ty));
                prop_assert!(value.active_domain().iter().all(|a| atoms.contains(a)));
                prop_assert_eq!(rank_of_value(&ty, &atoms, &value), Some(rank));
            }
        }
    }

    /// unnest(nest(R, coords), position) restores the original flat relation.
    #[test]
    fn nest_unnest_round_trip(
        pairs in proptest::collection::btree_set((0u32..5, 0u32..5), 1..12)
    ) {
        let instance = Instance::from_pairs(pairs.iter().map(|&(a, b)| (Atom(a), Atom(b))));
        let nested = nest(&instance, &[2]).unwrap();
        let flattened = unnest(&nested, 2).unwrap();
        prop_assert_eq!(flattened, instance);
    }

    /// The grandparent query is generic: permuting the atoms of the database
    /// permutes the answer (Section 2's C-genericity with C = ∅).
    #[test]
    fn grandparent_query_is_generic(
        pairs in proptest::collection::btree_set((0u32..5, 0u32..5), 0..8),
        shift in 1u32..50
    ) {
        let db = Database::single(
            "PAR",
            Instance::from_pairs(pairs.iter().map(|&(a, b)| (Atom(a), Atom(b)))),
        );
        let permute = move |a: Atom| Atom(a.id() + shift);
        let permuted_db = Database::single(
            "PAR",
            Instance::from_values(
                db.relation("PAR").unwrap().iter().map(|v| v.permute(&permute)),
            ),
        );
        let config = EvalConfig::default();
        let query = queries::grandparent_query();
        let direct = query.eval(&db, &config).unwrap();
        let of_permuted = query.eval(&permuted_db, &config).unwrap();
        let permuted_answer =
            Instance::from_values(direct.iter().map(|v| v.permute(&permute)));
        prop_assert_eq!(of_permuted, permuted_answer);
    }

    /// The two closure baselines agree on arbitrary random graphs.
    #[test]
    fn closure_baselines_agree(
        pairs in proptest::collection::btree_set((0u32..8, 0u32..8), 0..30)
    ) {
        let relation = Relation::from_pairs(pairs.iter().map(|&(a, b)| (Atom(a), Atom(b))));
        prop_assert_eq!(
            transitive_closure_seminaive(&relation),
            transitive_closure_warshall(&relation)
        );
    }

    /// Converting a flat relation to a complex-object instance and back is the
    /// identity, and the instance conforms to the declared flat type.
    #[test]
    fn relation_instance_round_trip(
        // At least one tuple: the arity of an empty instance cannot be recovered.
        tuples in proptest::collection::btree_set(
            proptest::collection::vec(0u32..6, 3), 1..10
        )
    ) {
        let relation = Relation::from_tuples(
            3,
            tuples.iter().map(|t| t.iter().map(|&x| Atom(x)).collect::<Vec<_>>()),
        );
        let instance = relation.to_instance();
        prop_assert!(instance.conforms_to(&relation.flat_type()));
        prop_assert_eq!(Relation::from_instance(&instance).unwrap(), relation);
    }

    /// Values keep their set-height and active domain under permutation.
    #[test]
    fn permutation_preserves_structure(atoms in small_atoms(), shift in 1u32..40) {
        let value = Value::set(
            atoms.iter().map(|&a| Value::pair(a, a)).collect::<Vec<_>>(),
        );
        let permuted = value.permute(&move |a: Atom| Atom(a.id() + shift));
        prop_assert_eq!(value.set_height(), permuted.set_height());
        prop_assert_eq!(value.size(), permuted.size());
        prop_assert_eq!(value.active_domain().len(), permuted.active_domain().len());
    }
}
