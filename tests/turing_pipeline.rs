//! Integration tests for the Turing-machine pipeline behind Example 3.5,
//! Theorem 4.4 and Example 6.14: run a machine, encode the computation as a
//! complex object, verify the `COMP` constraints, and relate the index budget to
//! the hyper-exponential bounds and to the invention semantics.

use itq_core::complexity::{growth_table, quantifier_domain_bounds};
use itq_object::cons::cons_cardinality;
use itq_object::{hyp, Type, Universe};
use itq_turing::machines::{palindrome_machine, parity_machine, stepper_machine, ONE, TWO};
use itq_turing::{comp_tuple_type, encode_run, run, verify_encoding, RunOutcome};

#[test]
fn parity_machine_agrees_with_the_parity_query_semantics() {
    // The machine accepts 1^n exactly when the even-cardinality query of
    // Example 3.2 returns a non-empty answer on an n-person database.
    let machine = parity_machine();
    for n in 0..6usize {
        let machine_accepts = run(&machine, &vec![ONE; n], 1_000).accepted();
        assert_eq!(machine_accepts, n % 2 == 0, "n = {n}");
    }
}

#[test]
fn encodings_of_varied_machines_all_verify() {
    let mut universe = Universe::new();
    let cases: Vec<(itq_turing::TuringMachine, Vec<u8>, bool)> = vec![
        (parity_machine(), vec![ONE; 4], true),
        (parity_machine(), vec![ONE; 5], false),
        (palindrome_machine(), vec![ONE, TWO, ONE], true),
        (palindrome_machine(), vec![ONE, TWO, TWO], false),
        (stepper_machine(7), vec![], true),
    ];
    for (machine, input, accepts) in cases {
        let execution = run(&machine, &input, 100_000);
        assert_eq!(execution.accepted(), accepts, "{machine}");
        let encoding = encode_run(&execution, &machine, &mut universe);
        verify_encoding(&encoding, &machine, accepts)
            .unwrap_or_else(|e| panic!("encoding of {machine} on {input:?} failed to verify: {e}"));
        // The encoding is rectangular: steps × cells rows of the 4-column type.
        assert_eq!(
            encoding.len(),
            encoding.step_atoms.len() * encoding.cell_atoms.len()
        );
        assert!(encoding.relation.conforms_to(&comp_tuple_type()));
    }
}

#[test]
fn index_budget_fits_within_the_papers_bounds() {
    // Example 3.5: a variable of type {[T, T, U, U]} can index a computation of
    // length |cons_A(T)|.  Check that for the stepper machine of k steps, an
    // intermediate type T with hyp(w, a, i) ≥ k+1 provides enough step indices.
    let mut universe = Universe::new();
    for k in [3u16, 10, 25] {
        let machine = stepper_machine(k);
        let execution = run(&machine, &[], 10_000);
        assert_eq!(execution.outcome, RunOutcome::Accepted);
        let encoding = encode_run(&execution, &machine, &mut universe);
        let steps_needed = encoding.step_atoms.len() as u64;

        // Find the smallest set-height i such that T_big(2, i) over 3 atoms
        // provides at least `steps_needed` index values.
        let atoms = 3usize;
        let mut level = 0usize;
        loop {
            let capacity = cons_cardinality(&Type::big(2, level), atoms);
            if capacity.saturating_u64() >= steps_needed {
                break;
            }
            level += 1;
            assert!(level < 4, "index space should suffice by level 3");
        }
        // The paper's bound: capacity ≤ hyp(2, atoms, level).
        let capacity = cons_cardinality(&Type::big(2, level), atoms);
        assert!(capacity.log2() <= hyp(2, atoms as u64, level as u32).log2() + 1e-9);
    }
}

#[test]
fn growth_table_matches_direct_cons_computation() {
    for atoms in 2..5u64 {
        for row in growth_table(2, atoms, 2) {
            let ty = Type::big(row.width, row.level);
            let (actual, bound) = quantifier_domain_bounds(&ty, atoms);
            assert!((actual.log2().max(0.0) - row.cons_log2).abs() < 1e-9);
            assert!((bound.log2().max(0.0) - row.hyp_log2).abs() < 1e-9);
        }
    }
}

#[test]
fn longer_inputs_need_more_index_atoms() {
    // The palindrome machine runs in Θ(n²) steps, so the encoding's index budget
    // grows superlinearly with the input — the "space" an intermediate type (or a
    // supply of invented values, Example 6.14) must provide.
    let machine = palindrome_machine();
    let mut universe = Universe::new();
    let mut previous_budget = 0usize;
    for n in [2usize, 4, 8] {
        let input = vec![ONE; n];
        let execution = run(&machine, &input, 1_000_000);
        assert!(execution.accepted());
        let encoding = encode_run(&execution, &machine, &mut universe);
        assert!(encoding.atom_budget() > previous_budget);
        previous_budget = encoding.atom_budget();
    }
    // Quadratic growth: the budget for n = 8 exceeds twice the budget for n = 4.
    assert!(previous_budget > 2 * 20);
}
