//! Integration tests for Section 6: invented-value semantics interacting with the
//! query library, the universal-type codec, and the engine facade.

use itq_calculus::eval::EvalConfig;
use itq_calculus::{Formula, Query, Term};
use itq_core::prelude::*;
use itq_core::queries;
use itq_invention::{
    bounded_invention, eval_with_invented, finite_invention, terminal_invention, InventionConfig,
    TerminalOutcome, UniversalCodec,
};
use itq_workloads::people::person_database;

/// Theorem 6.11 (spot-check): invention does not change the answers of
/// relational-calculus queries.
#[test]
fn relational_queries_are_invention_invariant() {
    let queries = vec![queries::grandparent_query(), queries::sibling_query()];
    let db = queries::parent_database(&[
        (Atom(0), Atom(1)),
        (Atom(0), Atom(2)),
        (Atom(1), Atom(3)),
        (Atom(3), Atom(4)),
    ]);
    let mut universe = Universe::new();
    let config = EvalConfig::default();
    for query in queries {
        let (baseline, _) = eval_with_invented(&query, &db, &mut universe, 0, &config).unwrap();
        for n in 1..=3 {
            let (answer, _) = eval_with_invented(&query, &db, &mut universe, n, &config).unwrap();
            assert_eq!(answer, baseline, "n = {n}");
        }
    }
}

/// The even-cardinality query is also invention-invariant: its matching variable
/// is already restricted to pairs of persons.
#[test]
fn parity_query_is_invention_invariant_on_small_inputs() {
    let query = queries::even_cardinality_query();
    let mut universe = Universe::new();
    let config = EvalConfig::default();
    for n in 0..4u32 {
        let db = person_database(n);
        let (baseline, _) = eval_with_invented(&query, &db, &mut universe, 0, &config).unwrap();
        let (with_one, _) = eval_with_invented(&query, &db, &mut universe, 1, &config).unwrap();
        assert_eq!(baseline, with_one, "n = {n}");
        // Odd committees (and the empty one, which has no persons to return) give
        // an empty answer; non-empty even committees return every person.
        let expect_empty = n == 0 || n % 2 == 1;
        assert_eq!(baseline.is_empty(), expect_empty, "n = {n}");
    }
}

/// A query whose truth genuinely depends on invention: "is the committee smaller
/// than the whole universe?"  Under the limited interpretation the answer is
/// empty; with any invention it returns the committee.
fn needs_invention_query() -> Query {
    Query::new(
        "t",
        Type::Atomic,
        Formula::and(vec![
            Formula::pred("PERSON", Term::var("t")),
            Formula::exists(
                "outsider",
                Type::Atomic,
                Formula::not(Formula::pred("PERSON", Term::var("outsider"))),
            ),
        ]),
        Schema::single("PERSON", Type::Atomic),
    )
    .unwrap()
}

#[test]
fn finite_invention_strictly_extends_the_limited_interpretation() {
    let query = needs_invention_query();
    let db = person_database(3);
    let mut universe = Universe::new();
    let report = finite_invention(&query, &db, &mut universe, &InventionConfig::default()).unwrap();
    assert!(report.answers[0].is_empty());
    assert_eq!(report.answers[1].len(), 3);
    assert_eq!(report.union.len(), 3);
    // Bounded invention with bound 0 coincides with the limited interpretation.
    let zero =
        bounded_invention(&query, &db, &mut universe, |_| 0, &EvalConfig::default()).unwrap();
    assert!(zero.is_empty());
}

#[test]
fn terminal_invention_is_defined_exactly_when_invented_values_surface() {
    let mut universe = Universe::new();
    let db = person_database(2);
    // {t/U | ⊤}: defined at n = 1 because the unrestricted answer contains the
    // invented atom.
    let everything = Query::new(
        "t",
        Type::Atomic,
        Formula::truth(),
        Schema::single("PERSON", Type::Atomic),
    )
    .unwrap();
    match terminal_invention(&everything, &db, &mut universe, &InventionConfig::default()).unwrap()
    {
        TerminalOutcome::Defined { n, answer } => {
            assert_eq!(n, 1);
            assert_eq!(answer.len(), 2);
        }
        other => panic!("unexpected {other:?}"),
    }
    // The guarded query never outputs invented values → undefined within bound.
    let guarded = needs_invention_query();
    match terminal_invention(&guarded, &db, &mut universe, &InventionConfig::default()).unwrap() {
        TerminalOutcome::UndefinedWithinBound { tried } => assert!(tried >= 1),
        other => panic!("unexpected {other:?}"),
    }
}

/// The universal-type codec composes with query evaluation: encode the *answer*
/// of a set-height-1 query into `T_univ` and decode it back.
#[test]
fn query_answers_round_trip_through_the_universal_type() {
    let engine = Engine::new();
    let db = queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))]);
    let answer = engine
        .prepare(&queries::transitive_closure_query())
        .unwrap()
        .execute(&db, Semantics::Limited)
        .unwrap()
        .result;
    // The answer is an instance of [U,U]; view it as a single object of {[U,U]}.
    let as_object = answer.as_set_value();
    let ty = Type::set(Type::flat_tuple(2));
    let mut universe = Universe::new();
    let codec = UniversalCodec::new(&ty, &mut universe);
    let encoded = codec.encode(&as_object, &mut universe).unwrap();
    assert!(encoded.value.has_type(&UniversalCodec::target_type()));
    assert_eq!(codec.decode(&encoded).unwrap(), as_object);
    // The encoding is strictly larger (it spells out every edge of the object
    // tree) but stays at set-height 1 — the collapse mechanism of Theorem 6.4.
    assert!(encoded.rows() >= answer.len());
    assert_eq!(UniversalCodec::target_type().set_height(), 1);
    assert_eq!(ty.set_height(), 1);
}

/// Engine-level smoke test covering all three semantics on one prepared query.
#[test]
fn engine_semantics_dispatch() {
    let engine = Engine::new();
    let db = person_database(3);
    let prepared = engine.prepare(&needs_invention_query()).unwrap();
    let limited = prepared.execute(&db, Semantics::Limited).unwrap();
    let finite = prepared.execute(&db, Semantics::FiniteInvention).unwrap();
    let terminal = prepared.execute(&db, Semantics::TerminalInvention).unwrap();
    assert!(limited.result.is_empty());
    assert_eq!(finite.result.len(), 3);
    // The guarded query never emits invented values, so terminal invention is a
    // bounded "undefined".
    assert!(terminal.bounded_approximation);
    assert_eq!(terminal.defined_at, None);
    // Each outcome remembers the semantics that produced it, and the invention
    // paths report how many levels they explored.
    assert_eq!(limited.semantics, Semantics::Limited);
    assert_eq!(finite.stats.invention_levels as usize, {
        engine.invention_config().max_invented + 1
    });
}
