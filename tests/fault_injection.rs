//! Resource-governor fault-injection property suite.
//!
//! Driven by the seed-deterministic harness in [`itq::fault`]: faults are
//! sampled from a [`FaultRng`] whose seed appears in every assertion message,
//! so a CI failure replays locally from the seed alone.  The injection seam
//! is `GovernorConfig::trip_after` — interrupt-poll counts are a pure
//! function of the query, database, and backend, so "trip at the nth poll"
//! names an exactly reproducible logical instant.
//!
//! The contract, checked across all four execution backends (compiled slots,
//! tree walker, planned algebra, tuple-at-a-time algebra) and all three
//! semantics (limited, finite-invention, terminal-invention):
//!
//! * an execution interrupted at *any* point returns either a typed
//!   [`EngineError::Resource`] / contained [`EngineError::Internal`] or the
//!   exact uninterrupted answer — never a silently wrong one;
//! * the same fault at the same trip point reproduces a byte-identical error,
//!   run after run, on a fresh engine or a reused prepared handle;
//! * after any fault — cancellation, deadline, ceiling, or an injected
//!   panic — the engine stays usable and a disarmed run matches the
//!   baseline byte-for-byte;
//! * shrinking memory ceilings cross the interning watermark monotonically:
//!   exact answers above it, the canonical ceiling error below it;
//! * cancellations injected at mutation-epoch boundaries of an incremental
//!   database never corrupt it: the mutation still commits, the watched view
//!   keeps its last-good answer marked stale, and the next healthy epoch
//!   catches it up.

use itq::fault::{epoch_faults, observation_governor, shrinking_ceilings, Fault, FaultRng};
use itq_algebra::{AlgExpr, SelFormula};
use itq_core::incremental::IncrementalDb;
use itq_core::prelude::*;
use itq_core::queries;

// Three atoms: large enough for the grandparent join to answer, small enough
// that the invention-semantics runs (whose quantifier domains grow with the
// active domain) stay affordable for the tree walker in debug builds.
fn family_db() -> Database {
    queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2))])
}

/// The grandparent join as an algebra expression, for the two algebra
/// backends (the calculus backends run [`queries::grandparent_query`]).
fn grandparent_algebra() -> AlgExpr {
    AlgExpr::pred("PAR")
        .product(AlgExpr::pred("PAR"))
        .select(SelFormula::coords_eq(2, 3))
        .project(vec![1, 4])
}

const BACKENDS: [&str; 4] = ["compiled", "tree-walk", "planned", "tuple"];

/// A fresh prepared handle for one backend under one governor.  Prepared
/// handles snapshot the governor, so every run arms its own engine.
fn prepare(backend: &str, governor: GovernorConfig) -> Prepared {
    // Poll-indexed faults (`trip_after`) force the sequential path, so the
    // whole suite pins `parallelism(1)`: otherwise an `ITQ_PARALLELISM`
    // override would run the non-poll-indexed faults partitioned and their
    // worker-dependent stats (cache hits, `partitions`) could never match the
    // sequential baseline.  Worker-count independence of governor trips is
    // pinned separately in tests/parallel_equivalence.rs.
    let builder = Engine::builder()
        .parallelism(1)
        .max_invented(1)
        .governor(governor);
    match backend {
        "compiled" => builder
            .build()
            .prepare(&queries::grandparent_query())
            .unwrap(),
        "tree-walk" => builder
            .use_compiled(false)
            .build()
            .prepare(&queries::grandparent_query())
            .unwrap(),
        "planned" => builder
            .build()
            .prepare_algebra(&grandparent_algebra(), &queries::parent_schema())
            .unwrap(),
        "tuple" => builder
            .use_algebra_planner(false)
            .build()
            .prepare_algebra(&grandparent_algebra(), &queries::parent_schema())
            .unwrap(),
        other => unreachable!("unknown backend {other}"),
    }
}

/// The core property: interruption at any sampled point is error-or-exact.
#[test]
fn interruption_yields_a_typed_error_or_the_exact_answer() {
    let db = family_db();
    for (b, backend) in BACKENDS.into_iter().enumerate() {
        for (s, semantics) in Semantics::ALL.into_iter().enumerate() {
            // Baseline: the observation governor is armed (so polls are
            // counted) but can never trip, so the answer is the exact one.
            let (baseline, stats) =
                prepare(backend, observation_governor()).try_execute(&db, semantics);
            let baseline = baseline
                .unwrap_or_else(|e| panic!("{backend}/{semantics}: uninterrupted run failed: {e}"));
            let polls = stats.interrupt_polls;
            assert!(
                polls >= 1,
                "{backend}/{semantics}: the entry poll always counts"
            );

            let seed = 1000 * (b as u64 + 1) + s as u64;
            let mut rng = FaultRng::new(seed);
            // Invention-semantics runs sweep whole level towers per
            // execution; fewer rounds keep the suite affordable.
            let rounds = if semantics == Semantics::Limited {
                12
            } else {
                6
            };
            for round in 0..rounds {
                let fault = Fault::sample(&mut rng, polls, 1 << 20);
                let here = format!("{backend}/{semantics} seed {seed} round {round}: {fault:?}");
                let (outcome, _) = prepare(backend, fault.governor()).try_execute(&db, semantics);
                match outcome {
                    Ok(out) => {
                        assert_eq!(out.result, baseline.result, "{here}: silently wrong answer");
                        assert_eq!(
                            out.stats.deterministic(),
                            baseline.stats.deterministic(),
                            "{here}: a completed run must have done the same work"
                        );
                    }
                    Err(EngineError::Resource(_)) => {}
                    Err(EngineError::Internal { detail }) => {
                        assert!(
                            matches!(fault, Fault::PanicAtPoll(_)),
                            "{here}: internal error without an injected panic: {detail}"
                        );
                        assert!(detail.contains("fault injection"), "{here}: {detail}");
                    }
                    Err(other) => panic!("{here}: untyped failure {other}"),
                }
            }
        }
    }
}

/// Same fault, same trip point → byte-identical error, on fresh engines and
/// on a reused prepared handle, across every backend and semantics.
#[test]
fn identical_faults_reproduce_byte_identical_errors() {
    let db = family_db();
    for backend in BACKENDS {
        for semantics in Semantics::ALL {
            // Poll 1 is the entry poll, so these two faults always trip.
            for fault in [Fault::CancelAtPoll(1), Fault::ZeroDeadline] {
                let here = format!("{backend}/{semantics}: {fault:?}");
                let first = prepare(backend, fault.governor())
                    .try_execute(&db, semantics)
                    .0
                    .unwrap_err();
                let second = prepare(backend, fault.governor())
                    .try_execute(&db, semantics)
                    .0
                    .unwrap_err();
                assert_eq!(first.to_string(), second.to_string(), "{here}");

                let reused = prepare(backend, fault.governor());
                let a = reused.try_execute(&db, semantics).0.unwrap_err();
                let b = reused.try_execute(&db, semantics).0.unwrap_err();
                assert_eq!(a.to_string(), first.to_string(), "{here} (reused handle)");
                assert_eq!(a.to_string(), b.to_string(), "{here} (reused handle)");
            }
        }
    }
}

/// After any fault kind — including a contained panic — re-executing matches
/// a fresh disarmed engine byte-for-byte: no fault leaves residue.
#[test]
fn engines_recover_after_every_fault_kind() {
    let db = family_db();
    for backend in BACKENDS {
        let baseline = prepare(backend, GovernorConfig::default())
            .try_execute(&db, Semantics::Limited)
            .0
            .unwrap();
        for fault in [
            Fault::CancelAtPoll(1),
            Fault::PanicAtPoll(1),
            Fault::MemoryCeiling(1),
            Fault::ZeroDeadline,
        ] {
            let here = format!("{backend}: {fault:?}");
            let handle = prepare(backend, fault.governor());
            let first = handle.try_execute(&db, Semantics::Limited).0;
            let second = handle.try_execute(&db, Semantics::Limited).0;
            match (first, second) {
                // The memory ceiling only governs interning backends, so on
                // the others a one-byte ceiling still completes — exactly.
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.result, baseline.result, "{here}");
                    assert_eq!(b.result, baseline.result, "{here}");
                }
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{here}"),
                _ => panic!("{here}: fault runs must be reproducible"),
            }
            // The fault left nothing behind: a disarmed engine of the same
            // backend still produces the baseline.
            let recovered = prepare(backend, GovernorConfig::default())
                .try_execute(&db, Semantics::Limited)
                .0
                .unwrap_or_else(|e| panic!("{here}: engine did not recover: {e}"));
            assert_eq!(recovered.result, baseline.result, "{here}");
            assert_eq!(
                recovered.stats.deterministic(),
                baseline.stats.deterministic(),
                "{here}"
            );
        }
    }
}

/// Shrinking ceilings cross the interning watermark monotonically: exact
/// answers above, the canonical error below, nothing in between.
#[test]
fn shrinking_memory_ceilings_are_exact_or_error_at_every_rung() {
    let db = family_db();
    let baseline = prepare("compiled", GovernorConfig::default())
        .try_execute(&db, Semantics::Limited)
        .0
        .unwrap();
    let mut tripped = false;
    for ceiling in shrinking_ceilings(1 << 20, 24) {
        let outcome = prepare("compiled", Fault::MemoryCeiling(ceiling).governor())
            .try_execute(&db, Semantics::Limited)
            .0;
        match outcome {
            Ok(out) => {
                assert!(
                    !tripped,
                    "ceiling {ceiling}: succeeded below a ceiling that already tripped"
                );
                assert_eq!(out.result, baseline.result, "ceiling {ceiling}");
            }
            Err(e) => {
                tripped = true;
                assert_eq!(
                    e.to_string(),
                    format!(
                        "interned values exceeded the configured memory ceiling of \
                         {ceiling} bytes"
                    )
                );
            }
        }
    }
    assert!(
        tripped,
        "the one-byte ceiling must trip the interning backend"
    );
}

/// Cancellations injected at mutation-epoch boundaries never corrupt the
/// incremental database: mutations still commit, tripped refreshes keep the
/// last-good answer marked stale, and healthy epochs catch the view up.
#[test]
fn epoch_boundary_faults_never_corrupt_watched_views() {
    let seed = 11;
    let flag = CancelFlag::new();
    let governed = Engine::builder().cancel_flag(flag.clone()).build();
    let prepared = governed.prepare(&queries::grandparent_query()).unwrap();
    let scratch_engine = Engine::new();
    let scratch = scratch_engine
        .prepare(&queries::grandparent_query())
        .unwrap();

    let mut inc = IncrementalDb::new(queries::parent_schema(), &family_db()).unwrap();
    inc.watch("gp", prepared, Semantics::Limited);
    let mut last_good = inc.view("gp").unwrap().outcome().clone().unwrap();

    let batches: Vec<Value> = (3..9).map(|i| Value::pair(Atom(i), Atom(i + 1))).collect();
    let schedule = epoch_faults(&mut FaultRng::new(seed), batches.len());
    assert!(schedule.iter().any(|&b| b) && !schedule.iter().all(|&b| b));
    for (epoch, (value, &faulty)) in batches.into_iter().zip(&schedule).enumerate() {
        let here = format!("seed {seed} epoch {epoch} (faulty: {faulty})");
        if faulty {
            flag.cancel();
        }
        let version = inc.version();
        inc.insert("PAR", vec![value])
            .unwrap_or_else(|e| panic!("{here}: the mutation itself must commit: {e}"));
        assert_eq!(inc.version(), version + 1, "{here}");
        let view = inc.view("gp").unwrap();
        if faulty {
            // The refresh tripped: last-good answer survives, marked stale.
            assert!(view.is_stale(), "{here}");
            assert_eq!(view.outcome(), &Ok(last_good.clone()), "{here}");
            flag.reset();
        } else {
            assert!(!view.is_stale(), "{here}");
            let exact = scratch
                .execute(&inc.snapshot(), Semantics::Limited)
                .unwrap()
                .result;
            assert_eq!(view.outcome(), &Ok(exact.clone()), "{here}");
            last_good = exact;
        }
    }
}
