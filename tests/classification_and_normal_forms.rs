//! Integration tests for Section 3/4 machinery across the query library:
//! intermediate-type classification, the `CALC_{k,i}` lattice, prenex normal
//! forms, and the existential fragment of Theorem 4.3.

use itq_calculus::classify::CalcClass;
use itq_calculus::eval::EvalConfig;
use itq_calculus::normal::{sf_classification, to_prenex};
use itq_calculus::{Formula, Query, Term};
use itq_core::complexity::{theorem_4_4_bounds, variable_space_bound};
use itq_core::hierarchy::{hierarchy_table, level_zero_one_witnesses};
use itq_core::queries;
use itq_object::{Atom, Schema, Type};

#[test]
fn query_library_classifications_match_the_paper() {
    let expectations = vec![
        (
            "grandparent",
            queries::grandparent_query(),
            CalcClass::new(0, 0),
        ),
        ("sibling", queries::sibling_query(), CalcClass::new(0, 0)),
        (
            "transitive closure",
            queries::transitive_closure_query(),
            CalcClass::new(0, 1),
        ),
        (
            "even cardinality",
            queries::even_cardinality_query(),
            CalcClass::new(0, 1),
        ),
        (
            "perfect square",
            queries::perfect_square_query(),
            CalcClass::new(0, 1),
        ),
        (
            "total orders",
            queries::total_orders_query(),
            CalcClass::new(1, 0),
        ),
    ];
    for (name, query, expected) in expectations {
        assert_eq!(query.classification().minimal_class, expected, "{name}");
    }
}

#[test]
fn prenexing_preserves_answers_for_the_flat_queries() {
    // Prenexing quantifiers over flat types preserves the limited-interpretation
    // semantics on non-empty databases; check it end-to-end on the grandparent
    // and sibling queries.
    let db =
        queries::parent_database(&[(Atom(0), Atom(1)), (Atom(1), Atom(2)), (Atom(0), Atom(3))]);
    let config = EvalConfig::default();
    for query in [queries::grandparent_query(), queries::sibling_query()] {
        let direct = query.eval(&db, &config).unwrap();
        let prenexed_body = to_prenex(query.body()).to_formula();
        let prenexed_query = query.with_body(prenexed_body).unwrap();
        let via_prenex = prenexed_query.eval(&db, &config).unwrap();
        assert_eq!(direct, via_prenex);
    }
}

#[test]
fn sf_fragment_membership_of_the_library() {
    // The even-cardinality query is an ∃-prefix query over a height-1 variable,
    // so it lies in the SF fragment of Theorem 4.3; the transitive-closure query
    // universally quantifies its height-1 variable and does not.
    let parity = sf_classification(&queries::even_cardinality_query());
    assert!(parity.is_in_sf());
    assert_eq!(parity.higher_order_vars, 1);

    let tc = sf_classification(&queries::transitive_closure_query());
    assert!(!tc.is_in_sf());

    // First-order queries are trivially in SF.
    assert!(sf_classification(&queries::grandparent_query()).is_in_sf());
}

#[test]
fn hierarchy_witnesses_and_counting_power() {
    for witness in level_zero_one_witnesses() {
        assert_eq!(
            witness.query.classification().minimal_class,
            witness.in_class
        );
    }
    // Counting power strictly increases level over level for every small domain.
    for atoms in 1..5u64 {
        for row in hierarchy_table(2, atoms, 3).iter().skip(1) {
            assert!(row.strictly_gains(), "atoms {atoms}, level {}", row.level);
        }
    }
}

#[test]
fn theorem_bounds_scale_with_the_level() {
    let tc = queries::transitive_closure_query();
    let bounds = theorem_4_4_bounds(tc.classification().minimal_class.i);
    assert!(bounds.time_lower.contains("H_0"));

    // Variable-space estimates grow with the domain size and with set-height.
    let small = variable_space_bound(&tc, 3);
    let large = variable_space_bound(&tc, 6);
    assert!(small.log2() < large.log2());
    let fo_small = variable_space_bound(&queries::grandparent_query(), 6);
    assert!(fo_small.log2() < large.log2());
}

#[test]
fn shadowed_variables_classify_by_every_quantified_type() {
    // A query quantifying the same variable name at two types registers both.
    let q = Query::new(
        "t",
        Type::Atomic,
        Formula::and(vec![
            Formula::pred("R", Term::var("t")),
            Formula::exists(
                "x",
                Type::flat_tuple(2),
                Formula::exists(
                    "x",
                    Type::set(Type::Atomic),
                    Formula::member(Term::var("t"), Term::var("x")),
                ),
            ),
        ]),
        Schema::single("R", Type::Atomic),
    )
    .unwrap();
    let classification = q.classification();
    assert_eq!(classification.intermediate_types.len(), 2);
    assert_eq!(classification.minimal_class, CalcClass::new(0, 1));
}

#[test]
fn containments_of_the_calc_lattice() {
    // CALC_{0,0} ⊆ CALC_{0,1} ⊆ CALC_{0,2} … and CALC_{k,i} ⊆ CALC_{k+1,i}.
    for k in 0..3 {
        for i in 0..3 {
            let here = CalcClass::new(k, i);
            assert!(here.contained_in(&CalcClass::new(k, i + 1)));
            assert!(here.contained_in(&CalcClass::new(k + 1, i)));
            assert!(!CalcClass::new(k + 1, i).contained_in(&here));
        }
    }
}
