#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory files on their stable keys.

Wall-clock fields (any key containing "micros", plus the derived "speedup"
and "overhead" ratios) vary per runner, so they are stripped before
comparison; everything else — experiment coordinates, answer sizes,
deterministic evaluator counters like steps / domain sizes / join probes —
must be identical between the committed file and the freshly regenerated one.
"""

import json
import sys

VOLATILE = ("micros", "speedup", "overhead")


def stable(node):
    if isinstance(node, dict):
        return {
            k: stable(v)
            for k, v in node.items()
            if not any(tag in k for tag in VOLATILE)
        }
    if isinstance(node, list):
        return [stable(v) for v in node]
    return node


def main() -> int:
    committed_path, regenerated_path = sys.argv[1], sys.argv[2]
    with open(committed_path) as f:
        committed = stable(json.load(f))
    with open(regenerated_path) as f:
        regenerated = stable(json.load(f))
    if committed == regenerated:
        print(f"{committed_path}: stable keys match the regenerated trajectory")
        return 0
    print(f"{committed_path}: stable keys drifted from the regenerated trajectory")
    print("committed:  ", json.dumps(committed, indent=2))
    print("regenerated:", json.dumps(regenerated, indent=2))
    return 1


if __name__ == "__main__":
    sys.exit(main())
