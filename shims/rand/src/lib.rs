#![forbid(unsafe_code)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides the
//! (small) part of the `rand 0.8` API that the workspace actually uses:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_bool`], [`Rng::gen_range`], [`Rng::gen`].
//!
//! The generator is SplitMix64 feeding xoshiro256++, which matches the quality
//! class of the real `SmallRng` (also a xoshiro variant).  Streams are fully
//! deterministic per seed, which is what the workload generators rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform sample from a (half-open or inclusive) integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        T::sample(range.into(), self)
    }

    /// A uniform sample of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    fn sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self;
}

/// A resolved range handed to [`SampleUniform::sample`]: the lower bound plus
/// the number of admissible values.  `span == 0` encodes "the whole type
/// domain", which is only reachable for 64-bit types (smaller domains fit in
/// the `u64` span exactly).
pub struct UniformRange<T> {
    pub low: T,
    pub span: u64,
}

macro_rules! impl_sample_uniform {
    ($(($t:ty, $unsigned:ty)),*) => {$(
        impl From<std::ops::Range<$t>> for UniformRange<$t> {
            fn from(r: std::ops::Range<$t>) -> Self {
                assert!(r.start < r.end, "gen_range called with an empty range");
                // Route the width through the unsigned twin so signed ranges
                // (e.g. -100i8..100) do not sign-extend or overflow.
                let span = r.end.wrapping_sub(r.start) as $unsigned as u64;
                UniformRange { low: r.start, span }
            }
        }
        impl From<std::ops::RangeInclusive<$t>> for UniformRange<$t> {
            fn from(r: std::ops::RangeInclusive<$t>) -> Self {
                assert!(r.start() <= r.end(), "gen_range called with an empty range");
                let width = r.end().wrapping_sub(*r.start()) as $unsigned as u64;
                // Wraps to 0 exactly when the range covers a full 64-bit
                // domain, which sample() treats as "whole type".
                UniformRange { low: *r.start(), span: width.wrapping_add(1) }
            }
        }
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self {
                if range.span == 0 {
                    return rng.next_u64() as $t;
                }
                range.low.wrapping_add((rng.next_u64() % range.span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5u32..10);
            assert!((5..10).contains(&x));
            let y: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
        }
    }

    #[test]
    fn gen_range_handles_bounds_at_type_extremes() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut saw_max = false;
        for _ in 0..2000 {
            // Inclusive upper bound at T::MAX must not wrap out of range.
            let x: u8 = rng.gen_range(1u8..=255);
            assert!(x >= 1);
            saw_max |= x == 255;
            // Signed range wider than the signed type's positive half.
            let y: i8 = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&y));
            // Full 64-bit domain (span wraps to the "whole type" marker).
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
        }
        assert!(saw_max, "inclusive upper bound was never sampled");
    }
}
