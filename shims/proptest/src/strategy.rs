//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a deterministic sampler: given a [`TestRng`] it produces one
//! value.  Unlike real proptest there is no value tree and no shrinking — the
//! strategies used by this workspace generate small inputs by construction, so
//! a failing case is already readable.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Keep only values satisfying `predicate`, re-sampling otherwise.
    fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            predicate,
        }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous nesting level and returns the strategy for one level deeper.
    /// Nesting is bounded by `depth`; the `_desired_size` and
    /// `_expected_branch_size` tuning knobs of real proptest are accepted for
    /// compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Bias towards recursion (weight 2 vs 1) so interesting nested
            // structures are common, while the leaf arm bounds the depth.
            current = Union::new_weighted(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: String,
    predicate: F,
}

/// How many re-samples a filter attempts before giving up.
const MAX_FILTER_ATTEMPTS: usize = 10_000;

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let candidate = self.source.sample(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {MAX_FILTER_ATTEMPTS} samples in a row; \
             the filtered strategy is too sparse",
            self.whence
        );
    }
}

/// Uniform (or weighted) choice between strategies of one value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "Union with zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (weight, option) in &self.options {
            if roll < *weight as u64 {
                return option.sample(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    // Wrapped: the range covers the whole 64-bit space.
                    return rng.next_u64() as $t;
                }
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}
