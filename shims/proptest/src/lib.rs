#![forbid(unsafe_code)]

//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this shim reimplements
//! the part of the `proptest 1.x` API that the workspace's property suites use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter`, `prop_recursive`, and `boxed`;
//! * primitive strategies: [`Just`](strategy::Just), integer ranges, tuples,
//!   [`any::<T>()`](arbitrary::any);
//! * [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig`](test_runner::ProptestConfig) and
//!   [`TestCaseError`](test_runner::TestCaseError).
//!
//! # Determinism instead of regression files
//!
//! The real proptest records failing cases in `proptest-regressions/` and
//! replays them; it also seeds its RNG from the OS, so two runs explore
//! different cases.  This shim takes the reproducible-CI route instead: every
//! test derives its base seed **deterministically from the test's module path
//! and name**, so a given workspace revision always explores exactly the same
//! cases, locally and in CI.  Two environment variables tune a run:
//!
//! * `PROPTEST_SEED` — XOR-ed into the per-test base seed to explore a fresh
//!   slice of the input space (e.g. a nightly job can set it to the run id);
//! * `PROPTEST_CASES` — overrides the per-test case count.
//!
//! On failure the harness panics with the test's seed and case index; re-running
//! with the printed `PROPTEST_SEED` reproduces the exact failing case, which is
//! what the regression files would have bought us.  There is no shrinking: the
//! strategies here generate small inputs by construction.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Combine several strategies for the same value type, choosing uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declare deterministic property tests.
///
/// Supports the standard form used throughout this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, v in collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(error) = outcome {
                    runner.report_failure(case, &error);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        let strategy = (0u32..5, 10usize..12).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = strategy.sample(&mut rng);
            assert!(a < 5);
            assert!((10..12).contains(&b));
        }
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let mut rng = crate::test_runner::TestRng::new(2);
        let even = (0u64..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strategy = Just(Tree::Leaf).prop_recursive(3, 12, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::new(3);
        let mut max_depth = 0;
        for _ in 0..300 {
            let tree = strategy.sample(&mut rng);
            max_depth = max_depth.max(depth(&tree));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }

    #[test]
    fn collections_honour_size_specs() {
        let mut rng = crate::test_runner::TestRng::new(4);
        let exact = crate::collection::vec(any::<bool>(), 4);
        let ranged = crate::collection::btree_set(0u32..50, 1..6);
        for _ in 0..100 {
            assert_eq!(exact.sample(&mut rng).len(), 4);
            let set = ranged.sample(&mut rng);
            assert!((1..6).contains(&set.len()), "len {}", set.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, assertions, and the runner together.
        #[test]
        fn macro_end_to_end(x in 0u32..10, flags in crate::collection::vec(any::<bool>(), 2)) {
            prop_assert!(x < 10);
            prop_assert_eq!(flags.len(), 2);
        }
    }
}
