//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification: an exact length or a half-open/inclusive range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_exclusive - self.min) as u64;
        self.min + rng.below(span) as usize
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `BTreeSet` whose cardinality is drawn from `size`.  If the element domain
/// is too small to reach the drawn cardinality, the set saturates at whatever
/// distinct elements were found (mirroring real proptest's behaviour).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = target * 20 + 100;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
