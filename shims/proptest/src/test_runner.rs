//! Deterministic test-runner plumbing: config, RNG, and failure reporting.

use std::fmt;

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test explores.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed or the body reported an explicit failure.
    Fail(String),
    /// The case asked to be discarded (kept for API compatibility).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
        }
    }
}

/// A small, fast, deterministic PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Drives the cases of one property test with a deterministic seed schedule.
pub struct TestRunner {
    test_name: &'static str,
    env_seed: u64,
    seed: u64,
    cases: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &'static str) -> Self {
        // Deterministic per-test base seed; `PROPTEST_SEED` shifts every test
        // onto a fresh slice of the input space without losing reproducibility.
        let env_seed = env_u64("PROPTEST_SEED").unwrap_or(0);
        let seed = fnv1a(test_name.as_bytes()) ^ env_seed;
        let cases = env_u64("PROPTEST_CASES")
            .map(|cases| cases.min(u32::MAX as u64) as u32)
            .unwrap_or(config.cases);
        TestRunner {
            test_name,
            env_seed,
            seed,
            cases,
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent RNG for the given case index.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        // Decorrelate cases with a Weyl-style stride on the base seed.
        TestRng::new(
            self.seed
                .wrapping_add((case as u64).wrapping_mul(0xA0761D6478BD642F)),
        )
    }

    /// Panic with enough information to replay the failing case exactly.
    pub fn report_failure(&self, case: u32, error: &TestCaseError) -> ! {
        panic!(
            "property `{}` failed at case {case}/{} (base seed {:#018x}): {error}\n\
             replay: run this test with PROPTEST_SEED={} (seeds are derived from \
             the test name XOR that value, so the failure reproduces exactly)",
            self.test_name, self.cases, self.seed, self.env_seed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_per_test() {
        let a = TestRunner::new(ProptestConfig::with_cases(8), "crate::mod::test_a");
        let a2 = TestRunner::new(ProptestConfig::with_cases(8), "crate::mod::test_a");
        let b = TestRunner::new(ProptestConfig::with_cases(8), "crate::mod::test_b");
        assert_eq!(a.seed(), a2.seed());
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn case_rngs_are_decorrelated() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let x = runner.rng_for_case(0).next_u64();
        let y = runner.rng_for_case(1).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn unit_samples_stay_in_range() {
        let mut rng = TestRng::new(99);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(rng.below(7) < 7);
        }
    }
}
