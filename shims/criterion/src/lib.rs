#![forbid(unsafe_code)]

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim reimplements
//! the slice of the `criterion 0.5` API the workspace's benches use:
//!
//! * [`criterion_group!`] / [`criterion_main!`];
//! * [`Criterion::benchmark_group`] and [`Criterion::bench_function`];
//! * [`BenchmarkGroup::{sample_size, measurement_time, bench_function,
//!   bench_with_input, throughput, finish}`](BenchmarkGroup);
//! * [`BenchmarkId::new`] / [`BenchmarkId::from_parameter`];
//! * [`Bencher::iter`] and [`black_box`].
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up
//! iteration followed by `sample_size` timed samples, and the harness prints
//! `median / min / max` per benchmark.  That is enough to compare the
//! workspace's algorithms against each other and to keep `cargo bench` output
//! readable, without statistical machinery.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLES` — when set, overrides every benchmark's requested
//!   `sample_size` (e.g. CI pinning a fast run with `CRITERION_SAMPLES=2`);
//! * `CRITERION_MAX_SECONDS` — soft per-benchmark time budget (default 5s).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export hint::black_box under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted and ignored by the shim's reporting).
#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
    deadline: Instant,
}

impl Bencher {
    fn new(sample_budget: usize, deadline: Instant) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_budget,
            deadline,
        }
    }

    /// Run `routine` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run.
        black_box(routine());
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn run_one(full_id: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // The benchmark's own sample_size() request wins unless the environment
    // explicitly overrides it (e.g. CI setting CRITERION_SAMPLES=2).
    let budget = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(sample_size)
        .max(1);
    let max_seconds = env_usize("CRITERION_MAX_SECONDS", 5) as u64;
    let deadline = Instant::now() + Duration::from_secs(max_seconds.max(1));
    let mut bencher = Bencher::new(budget, deadline);
    routine(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{full_id:<60} (no samples recorded)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "{full_id:<60} median {:>12}   min {:>12}   max {:>12}   ({} samples)",
        format_duration(median),
        format_duration(samples[0]),
        format_duration(*samples.last().unwrap()),
        samples.len()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().id, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point: run every group, ignoring harness CLI flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and possibly filters); the shim
            // runs everything and ignores the arguments.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("warshall", 64).id, "warshall/64");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_records_samples_and_groups_run() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim-smoke");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // one warm-up + up to three samples
        assert!(runs >= 2);
        criterion.bench_function("top-level", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn duration_formatting_covers_magnitudes() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
