//! A deliberately tiny SIGINT latch.
//!
//! The workspace forbids `unsafe` everywhere except this one shim, whose whole
//! job is the two lines that *must* be unsafe: declaring the libc `signal(2)`
//! entry point and installing a handler through it. Everything observable from
//! the outside is safe: [`install`] registers the handler once, the handler
//! sets a process-wide [`AtomicBool`], and [`take`]/[`pending`] read it.
//!
//! Design constraints, in order:
//!
//! * **No dependency.** The build environment has no crates.io access, so the
//!   usual `signal-hook`/`ctrlc` crates are out; this shim stands in for them
//!   the way `shims/rand` stands in for `rand` (see `shims/README.md`).
//! * **Async-signal-safety.** The handler body is a single
//!   [`AtomicBool::store`] with relaxed ordering — no allocation, no locking,
//!   no formatting. Consumers poll the flag from ordinary threads.
//! * **BSD semantics.** glibc's `signal(2)` installs the handler with
//!   `SA_RESTART`, so a process blocked in `read(2)` (the REPL waiting at its
//!   prompt) or `accept(2)` is *not* interrupted — the call restarts and the
//!   flag is only noticed at the next poll. Callers that need prompt delivery
//!   run a small watcher thread; callers that block forever must use
//!   non-blocking I/O plus polling (that is why `itq serve` uses a
//!   non-blocking accept loop).
//!
//! On non-unix targets every function is a safe no-op returning `false`, so
//! the surface crate builds unchanged; Ctrl-C then simply terminates the
//! process, which is the pre-shim behaviour everywhere.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler, consumed by [`take`]. Process-wide on purpose: SIGINT
/// is a process-wide event, and a second latch could only ever race the first.
static SIGINT_PENDING: AtomicBool = AtomicBool::new(false);

/// Guards against installing the handler twice; `signal(2)` itself is
/// idempotent here, but re-installation from multiple threads is pointless
/// churn and this keeps [`install`]'s return value meaningful.
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, INSTALLED, SIGINT_PENDING};

    /// `SIGINT` is 2 on every unix the workspace targets (POSIX fixes it).
    const SIGINT: i32 = 2;
    /// `signal(2)`'s `SIG_ERR` return value.
    const SIG_ERR: isize = -1;

    extern "C" {
        /// The one FFI declaration in the workspace. glibc's `signal` has BSD
        /// semantics (handler stays installed, syscalls restart); both are
        /// exactly what the latch wants.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        /// Used only by this shim's unit tests to deliver a synthetic SIGINT
        /// to the current process.
        #[cfg(test)]
        fn raise(signum: i32) -> i32;
    }

    /// The handler proper: async-signal-safe by construction — one relaxed
    /// atomic store, nothing else.
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_PENDING.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() -> bool {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return true;
        }
        // SAFETY: `signal` is the documented libc entry point; `on_sigint` is
        // a valid `extern "C" fn(i32)` for the whole program lifetime (it is a
        // plain fn item, not a closure), and its body is async-signal-safe.
        let previous = unsafe { signal(SIGINT, on_sigint) };
        if previous == SIG_ERR {
            INSTALLED.store(false, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Test-only: deliver SIGINT to ourselves synchronously. `raise` returns
    /// after the handler has run on this thread, so the flag is observable
    /// immediately — no sleep/retry loop needed in tests.
    #[cfg(test)]
    pub(super) fn raise_sigint() {
        // SAFETY: `raise` is the documented libc entry point and SIGINT has a
        // handler installed by the calling test; delivering a signal to our
        // own process is well-defined.
        let rc = unsafe { raise(SIGINT) };
        assert_eq!(rc, 0, "raise(SIGINT) failed");
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() -> bool {
        false
    }
}

/// Install the process-wide SIGINT handler. Idempotent: the first call does
/// the `signal(2)` registration, later calls are no-ops that return `true`.
/// Returns `false` when no handler could be installed (non-unix targets, or
/// `signal(2)` reported `SIG_ERR`) — callers should then leave the default
/// terminate-on-Ctrl-C behaviour documented as-is.
pub fn install() -> bool {
    imp::install()
}

/// Consume a pending SIGINT: returns `true` exactly once per delivered
/// signal burst (the flag is swapped to `false`). Multiple SIGINTs between
/// two `take` calls coalesce into one `true`, which is the right semantics
/// for "cancel the current statement".
pub fn take() -> bool {
    SIGINT_PENDING.swap(false, Ordering::Relaxed)
}

/// Peek at the flag without consuming it. Watcher threads use this to decide
/// whether to fan the signal out before a later `take` clears it.
pub fn pending() -> bool {
    SIGINT_PENDING.load(Ordering::Relaxed)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    // The three tests share one process-wide flag and handler, so they run as
    // a single #[test] to keep their ordering deterministic under the
    // parallel test harness.
    #[test]
    fn install_latch_and_take_roundtrip() {
        assert!(install(), "signal(2) registration failed");
        assert!(install(), "second install must be an idempotent success");

        // Quiescent state: nothing pending, take is false.
        assert!(!pending());
        assert!(!take());

        // A delivered SIGINT latches; pending() peeks without consuming.
        imp::raise_sigint();
        assert!(pending());
        assert!(pending(), "peek must not consume");
        assert!(take(), "first take consumes the latch");
        assert!(!take(), "second take sees the cleared flag");
        assert!(!pending());

        // Two signals before a take coalesce into a single cancellation.
        imp::raise_sigint();
        imp::raise_sigint();
        assert!(take());
        assert!(!take());
    }
}
